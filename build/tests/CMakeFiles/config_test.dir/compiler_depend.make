# Empty compiler generated dependencies file for config_test.
# This may be replaced when dependencies are built.
