file(REMOVE_RECURSE
  "CMakeFiles/orchestrator_test.dir/unit/orchestrator_test.cc.o"
  "CMakeFiles/orchestrator_test.dir/unit/orchestrator_test.cc.o.d"
  "orchestrator_test"
  "orchestrator_test.pdb"
  "orchestrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
