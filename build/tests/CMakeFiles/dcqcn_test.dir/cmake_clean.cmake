file(REMOVE_RECURSE
  "CMakeFiles/dcqcn_test.dir/unit/dcqcn_test.cc.o"
  "CMakeFiles/dcqcn_test.dir/unit/dcqcn_test.cc.o.d"
  "dcqcn_test"
  "dcqcn_test.pdb"
  "dcqcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcqcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
