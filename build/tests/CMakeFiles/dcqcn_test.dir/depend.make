# Empty dependencies file for dcqcn_test.
# This may be replaced when dependencies are built.
