file(REMOVE_RECURSE
  "CMakeFiles/yaml_test.dir/unit/yaml_test.cc.o"
  "CMakeFiles/yaml_test.dir/unit/yaml_test.cc.o.d"
  "yaml_test"
  "yaml_test.pdb"
  "yaml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
