# Empty compiler generated dependencies file for yaml_test.
# This may be replaced when dependencies are built.
