// Tests for RC atomic operations (FetchAdd / CmpSwap): packet formats,
// execution semantics, response caching on retransmission, and the
// end-to-end path through the orchestrated testbed.
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "rnic/rnic.h"

namespace lumina {
namespace {

// ---------------------------------------------------------------------------
// Packet format
// ---------------------------------------------------------------------------

TEST(AtomicPacket, FetchAddRoundTrips) {
  RocePacketSpec spec;
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.opcode = IbOpcode::kFetchAdd;
  spec.psn = 77;
  spec.atomic_eth = AtomicEth{0xdead0000, 0x42, 5, 0};
  const Packet pkt = build_roce_packet(spec);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->atomic_eth.has_value());
  EXPECT_EQ(view->atomic_eth->vaddr, 0xdead0000u);
  EXPECT_EQ(view->atomic_eth->rkey, 0x42u);
  EXPECT_EQ(view->atomic_eth->swap_add, 5u);
  EXPECT_TRUE(verify_icrc(pkt));
  EXPECT_EQ(view->payload_len, 0u);
}

TEST(AtomicPacket, AtomicAckCarriesOriginalValue) {
  RocePacketSpec spec;
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.opcode = IbOpcode::kAtomicAck;
  spec.aeth = Aeth::ack(3);
  spec.atomic_ack_eth = AtomicAckEth{0x1122334455667788ULL};
  const auto view = parse_roce(build_roce_packet(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->aeth.has_value());
  ASSERT_TRUE(view->atomic_ack_eth.has_value());
  EXPECT_EQ(view->atomic_ack_eth->original, 0x1122334455667788ULL);
}

TEST(AtomicPacket, AtomicsAreNotInjectableDataOpcodes) {
  // §3.3: the injector targets data packets; atomics, like read requests,
  // are request-class packets the event table does not match.
  EXPECT_FALSE(is_data_opcode(IbOpcode::kFetchAdd));
  EXPECT_FALSE(is_data_opcode(IbOpcode::kCmpSwap));
  EXPECT_FALSE(is_data_opcode(IbOpcode::kAtomicAck));
  EXPECT_TRUE(is_atomic(IbOpcode::kFetchAdd));
  EXPECT_FALSE(is_atomic(IbOpcode::kAcknowledge));
}

// ---------------------------------------------------------------------------
// QP semantics (direct wiring; see rnic_test.cc for the harness pattern)
// ---------------------------------------------------------------------------

class AtomicWire : public Node {
 public:
  explicit AtomicWire(Simulator* sim)
      : port0_(sim, this, 0), port1_(sim, this, 1) {}
  void handle_packet(int in_port, Packet pkt) override {
    const auto view = parse_roce(pkt);
    if (view && view->bth.opcode == IbOpcode::kAtomicAck &&
        acks_to_drop > 0) {
      --acks_to_drop;
      return;
    }
    (in_port == 0 ? port1_ : port0_).send(std::move(pkt));
  }
  std::string name() const override { return "wire"; }
  Port& port0() { return port0_; }
  Port& port1() { return port1_; }
  int acks_to_drop = 0;

 private:
  Port port0_;
  Port port1_;
};

class AtomicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    req = std::make_unique<Rnic>(&sim, "req",
                                 DeviceProfile::get(NicType::kCx5),
                                 RoceParameters{}, MacAddress::from_u48(0xaa));
    resp = std::make_unique<Rnic>(&sim, "resp",
                                  DeviceProfile::get(NicType::kCx5),
                                  RoceParameters{}, MacAddress::from_u48(0xbb));
    connect(req->port(), wire.port0(), LinkParams{100.0, 200});
    connect(resp->port(), wire.port1(), LinkParams{100.0, 200});
    rq = req->create_qp(QpConfig{.timeout = 10});
    rs = resp->create_qp(QpConfig{.timeout = 10});
    QpEndpointInfo req_info{Ipv4Address::from_octets(10, 0, 0, 1), rq->qpn(),
                            1000, 0x1000, 1 << 20, 0x11};
    QpEndpointInfo resp_info{Ipv4Address::from_octets(10, 0, 0, 2), rs->qpn(),
                             5000, 0x2000, 1 << 20, 0x22};
    rq->connect(req_info, resp_info);
    rs->connect(resp_info, req_info);
    rq->set_completion_callback(
        [this](const WorkCompletion& wc) { completions.push_back(wc); });
  }

  WorkRequest fetch_add(std::uint64_t wr_id, std::uint64_t add) {
    WorkRequest wr;
    wr.wr_id = wr_id;
    wr.verb = RdmaVerb::kFetchAdd;
    wr.length = 8;
    wr.remote_addr = 0x2000;
    wr.rkey = 0x22;
    wr.compare_add = add;
    return wr;
  }

  Simulator sim;
  AtomicWire wire{&sim};
  std::unique_ptr<Rnic> req;
  std::unique_ptr<Rnic> resp;
  QueuePair* rq = nullptr;
  QueuePair* rs = nullptr;
  std::vector<WorkCompletion> completions;
};

TEST_F(AtomicTest, FetchAddAccumulatesAndReturnsOriginals) {
  rq->post_send(fetch_add(1, 5));
  rq->post_send(fetch_add(2, 7));
  rq->post_send(fetch_add(3, 1));
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].atomic_original, 0u);
  EXPECT_EQ(completions[1].atomic_original, 5u);
  EXPECT_EQ(completions[2].atomic_original, 12u);
  EXPECT_EQ(rs->atomic_memory(0x2000), 13u);
  for (const auto& wc : completions) {
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
  }
}

TEST_F(AtomicTest, CmpSwapSwapsOnlyOnMatch) {
  rs->set_atomic_memory(0x2000, 42);
  WorkRequest wr;
  wr.verb = RdmaVerb::kCmpSwap;
  wr.length = 8;
  wr.remote_addr = 0x2000;
  wr.rkey = 0x22;

  wr.wr_id = 1;
  wr.compare_add = 42;  // matches -> swap
  wr.swap = 100;
  rq->post_send(wr);
  wr.wr_id = 2;
  wr.compare_add = 42;  // stale compare -> no swap
  wr.swap = 999;
  rq->post_send(wr);
  sim.run();

  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].atomic_original, 42u);
  EXPECT_EQ(completions[1].atomic_original, 100u);  // reports current value
  EXPECT_EQ(rs->atomic_memory(0x2000), 100u);       // second swap refused
}

TEST_F(AtomicTest, LostAckReplaysCachedResultWithoutReExecuting) {
  wire.acks_to_drop = 1;  // the first AtomicAck vanishes
  rq->post_send(fetch_add(1, 5));
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  // The RTO retransmitted the request; the responder must replay the
  // cached original instead of adding twice.
  EXPECT_EQ(completions[0].atomic_original, 0u);
  EXPECT_EQ(rs->atomic_memory(0x2000), 5u);  // exactly once
  EXPECT_GE(resp->counters().duplicate_request, 1u);
  EXPECT_GE(req->counters().local_ack_timeout_err, 1u);
}

TEST_F(AtomicTest, AtomicsInterleaveWithWrites) {
  rq->post_send({10, RdmaVerb::kWrite, 4096, 0x2000, 0x22});
  rq->post_send(fetch_add(11, 3));
  rq->post_send({12, RdmaVerb::kWrite, 2048, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  for (const auto& wc : completions) {
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
  }
  EXPECT_EQ(rs->atomic_memory(0x2000), 3u);
}

// ---------------------------------------------------------------------------
// End to end through the orchestrated testbed
// ---------------------------------------------------------------------------

TEST(AtomicEndToEnd, FetchAddVerbFromConfig) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kFetchAdd;
  cfg.traffic.num_msgs_per_qp = 10;  // ten atomic increments
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_EQ(result.flows[0].completed(), 10u);
  // The responder-side counter reached 10.
  EXPECT_EQ(orch.generator().responder_qp(0)->atomic_memory(
                result.connections[0].responder.buffer_addr),
            10u);
  int atomics = 0, atomic_acks = 0;
  for (const auto& p : result.trace) {
    if (is_atomic(p.view.bth.opcode)) ++atomics;
    if (p.view.bth.opcode == IbOpcode::kAtomicAck) ++atomic_acks;
  }
  EXPECT_EQ(atomics, 10);
  EXPECT_EQ(atomic_acks, 10);
}

TEST(AtomicEndToEnd, CmpSwapVerbParsesFromYaml) {
  const TrafficConfig cfg =
      load_traffic_config(parse_yaml("rdma-verb: cmpswap\n"));
  EXPECT_EQ(cfg.verb, RdmaVerb::kCmpSwap);
  EXPECT_EQ(parse_verb("fetchadd"), RdmaVerb::kFetchAdd);
}

}  // namespace
}  // namespace lumina
