// Unit tests for the traffic generator (§3.2): posting discipline
// (tx-depth), barrier synchronization across QPs, multi-GID selection,
// flow abort semantics, and metrics.
#include <gtest/gtest.h>

#include <algorithm>

#include "orchestrator/orchestrator.h"

namespace lumina {
namespace {

TestConfig base_config() {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 1;
  cfg.traffic.num_msgs_per_qp = 6;
  cfg.traffic.message_size = 4096;
  return cfg;
}

/// Maximum number of in-flight messages on one connection, reconstructed
/// from the per-message post/completion timestamps.
int max_in_flight(const FlowMetrics& flow) {
  int best = 0;
  for (const auto& a : flow.messages) {
    int overlap = 0;
    for (const auto& b : flow.messages) {
      if (b.posted_at <= a.posted_at &&
          (b.completed_at < 0 || b.completed_at > a.posted_at)) {
        ++overlap;
      }
    }
    best = std::max(best, overlap);
  }
  return best;
}

TEST(TrafficGenerator, TxDepthOneIsSequential) {
  TestConfig cfg = base_config();
  cfg.traffic.tx_depth = 1;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(max_in_flight(result.flows[0]), 1);
  // Each message is posted only after the previous one completed.
  const auto& msgs = result.flows[0].messages;
  for (std::size_t i = 1; i < msgs.size(); ++i) {
    EXPECT_GE(msgs[i].posted_at, msgs[i - 1].completed_at);
  }
}

TEST(TrafficGenerator, TxDepthBoundsOutstandingMessages) {
  TestConfig cfg = base_config();
  cfg.traffic.tx_depth = 3;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_LE(max_in_flight(result.flows[0]), 3);
  EXPECT_GE(max_in_flight(result.flows[0]), 2);  // pipelining happened
}

TEST(TrafficGenerator, BarrierSyncAlignsRounds) {
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 3;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.barrier_sync = true;
  cfg.traffic.tx_depth = 1;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);

  // Round k on any connection must start only after round k-1 completed on
  // ALL connections (§3.2 barrier semantics).
  for (int round = 1; round < 4; ++round) {
    Tick round_start = std::numeric_limits<Tick>::max();
    Tick prev_round_end = 0;
    for (const auto& flow : result.flows) {
      const auto r = static_cast<std::size_t>(round);
      round_start = std::min(round_start, flow.messages[r].posted_at);
      prev_round_end =
          std::max(prev_round_end, flow.messages[r - 1].completed_at);
    }
    EXPECT_GE(round_start, prev_round_end) << "round " << round;
  }
}

TEST(TrafficGenerator, WithoutBarrierFlowsRunIndependently) {
  // Slow down one flow with a drop; without barrier the others keep going.
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.requester().nic_type = NicType::kCx4Lx;  // 200 us NACK reaction
  cfg.responder().nic_type = NicType::kCx4Lx;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 2, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  // Connection 2 finishes long before connection 1's recovery completes.
  EXPECT_LT(result.flows[1].last_completion,
            result.flows[0].last_completion);
}

TEST(TrafficGenerator, MultiGidCyclesAddresses) {
  TestConfig cfg = base_config();
  cfg.requester().ip_list = {Ipv4Address::from_octets(10, 0, 0, 1),
                           Ipv4Address::from_octets(10, 0, 0, 2),
                           Ipv4Address::from_octets(10, 0, 0, 3)};
  cfg.traffic.multi_gid = true;
  cfg.traffic.num_connections = 5;
  Orchestrator orch(cfg);
  orch.generator().setup();
  const auto& conns = orch.generator().connections();
  EXPECT_EQ(conns[0].requester.ip, cfg.requester().ip_list[0]);
  EXPECT_EQ(conns[1].requester.ip, cfg.requester().ip_list[1]);
  EXPECT_EQ(conns[2].requester.ip, cfg.requester().ip_list[2]);
  EXPECT_EQ(conns[3].requester.ip, cfg.requester().ip_list[0]);  // wraps
}

TEST(TrafficGenerator, WithoutMultiGidAllConnectionsShareFirstAddress) {
  TestConfig cfg = base_config();
  cfg.requester().ip_list = {Ipv4Address::from_octets(10, 0, 0, 1),
                           Ipv4Address::from_octets(10, 0, 0, 2)};
  cfg.traffic.multi_gid = false;
  cfg.traffic.num_connections = 3;
  Orchestrator orch(cfg);
  orch.generator().setup();
  for (const auto& conn : orch.generator().connections()) {
    EXPECT_EQ(conn.requester.ip, cfg.requester().ip_list[0]);
  }
}

TEST(TrafficGenerator, RandomizedQpnsAndIpsnsDifferAcrossConnections) {
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 8;
  Orchestrator orch(cfg);
  orch.generator().setup();
  const auto& conns = orch.generator().connections();
  for (std::size_t i = 0; i < conns.size(); ++i) {
    for (std::size_t j = i + 1; j < conns.size(); ++j) {
      EXPECT_NE(conns[i].requester.qpn, conns[j].requester.qpn);
      EXPECT_NE(conns[i].requester.ipsn, conns[j].requester.ipsn);
      EXPECT_NE(conns[i].responder.qpn, conns[j].responder.qpn);
    }
  }
}

TEST(TrafficGenerator, AbortedFlowStopsPostingAndKeepsBarrierMoving) {
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.barrier_sync = true;
  cfg.traffic.min_retransmit_timeout = 8;  // quick retries
  cfg.traffic.max_retransmit_retry = 1;
  // Kill connection 1's first message: original + retransmissions dropped.
  for (std::uint32_t iter = 1; iter <= 4; ++iter) {
    cfg.traffic.data_pkt_events.push_back(
        DataPacketEvent{1, 4, EventType::kDrop, iter});
  }
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.flows[0].aborted);
  EXPECT_LT(result.flows[0].completed(), 3u);
  // The healthy flow still finished all its rounds despite the barrier.
  EXPECT_FALSE(result.flows[1].aborted);
  EXPECT_EQ(result.flows[1].completed(), 3u);
}

TEST(TrafficGenerator, GoodputReflectsWireRate) {
  TestConfig cfg = base_config();
  cfg.traffic.num_msgs_per_qp = 50;
  cfg.traffic.message_size = 100 * 1024;
  cfg.traffic.tx_depth = 4;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  // Single flow on a 100 Gbps link: goodput lands near line rate minus
  // header overhead (1024/1114 x 100 ~ 92), certainly within 80-95.
  EXPECT_GT(result.flows[0].goodput_gbps(), 80.0);
  EXPECT_LT(result.flows[0].goodput_gbps(), 95.0);
}

TEST(TrafficGenerator, McTsAreNonNegativeAndOrdered) {
  TestConfig cfg = base_config();
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  for (const auto& msg : result.flows[0].messages) {
    EXPECT_GE(msg.completed_at, msg.posted_at);
  }
  EXPECT_GT(result.flows[0].avg_mct_us(), 0.0);
}

}  // namespace
}  // namespace lumina
