// Unit tests for DCQCN: RP rate state machine and NP CNP rate limiting
// with the three device scopes (§6.3).
#include <gtest/gtest.h>

#include "rnic/dcqcn.h"

namespace lumina {
namespace {

const Ipv4Address kIpA = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kIpB = Ipv4Address::from_octets(10, 0, 0, 2);

// ---------------------------------------------------------------------------
// Reaction point
// ---------------------------------------------------------------------------

TEST(DcqcnRp, StartsAtLineRate) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  EXPECT_DOUBLE_EQ(rp.rate_gbps(), 100.0);
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);
}

TEST(DcqcnRp, CnpCutsRateMultiplicatively) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  rp.on_cnp();
  // First CNP with alpha=1 halves the rate.
  EXPECT_NEAR(rp.rate_gbps(), 50.0, 0.01);
  EXPECT_EQ(rp.cnps_processed(), 1u);
  rp.on_cnp();
  EXPECT_LT(rp.rate_gbps(), 50.0);
}

TEST(DcqcnRp, RateNeverFallsBelowMinimum) {
  Simulator sim;
  DcqcnParams params;
  params.min_rate_gbps = 2.0;
  DcqcnRp rp(&sim, params, 100.0);
  for (int i = 0; i < 50; ++i) rp.on_cnp();
  EXPECT_GE(rp.rate_gbps(), 2.0);
}

TEST(DcqcnRp, RecoversTowardLineRateAfterCongestionEnds) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  rp.on_cnp();
  rp.on_cnp();
  const double throttled = rp.rate_gbps();
  sim.run_until(sim.now() + 10 * kMillisecond);  // timers recover the rate
  EXPECT_GT(rp.rate_gbps(), throttled);
  EXPECT_NEAR(rp.rate_gbps(), 100.0, 1.0);
}

TEST(DcqcnRp, AlphaDecaysAfterCongestion) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  rp.on_cnp();
  const double alpha_after_cnp = rp.alpha();
  EXPECT_GT(alpha_after_cnp, 0.9);  // pushed toward 1
  sim.run_until(sim.now() + 2 * kMillisecond);
  EXPECT_LT(rp.alpha(), alpha_after_cnp / 2);
}

TEST(DcqcnRp, LaterCnpsCutLessOnceAlphaDecays) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  rp.on_cnp();  // halves
  sim.run_until(sim.now() + 5 * kMillisecond);  // alpha decays, rate recovers
  const double rate = rp.rate_gbps();
  rp.on_cnp();
  // Cut factor is (1 - alpha/2); with decayed alpha it is much gentler.
  EXPECT_GT(rp.rate_gbps(), rate * 0.7);
}

TEST(DcqcnRp, DisabledRpIgnoresCnps) {
  Simulator sim;
  DcqcnRp rp(&sim, DcqcnParams{}, 100.0);
  rp.set_enabled(false);
  rp.on_cnp();
  EXPECT_DOUBLE_EQ(rp.rate_gbps(), 100.0);
}

TEST(DcqcnRp, ByteCounterAdvancesRecovery) {
  Simulator sim;
  DcqcnParams params;
  params.byte_counter_threshold = 64 * 1024;
  DcqcnRp rp(&sim, params, 100.0);
  rp.on_cnp();
  const double throttled = rp.rate_gbps();
  // No timer advance: only bytes flow.
  for (int i = 0; i < 256; ++i) rp.on_packet_sent(1024);
  EXPECT_GT(rp.rate_gbps(), throttled);
}

// ---------------------------------------------------------------------------
// NP rate limiter scopes
// ---------------------------------------------------------------------------

constexpr Tick kInterval = 4 * kMicrosecond;

TEST(CnpRateLimiter, PerPortIsOneGlobalDomain) {
  CnpRateLimiter limiter(CnpRateLimitMode::kPerPort);
  EXPECT_TRUE(limiter.allow(kIpA, 1, 0, kInterval));
  // Different QP, different IP — still paced by the single domain.
  EXPECT_FALSE(limiter.allow(kIpB, 2, 1000, kInterval));
  EXPECT_FALSE(limiter.allow(kIpA, 3, 3999, kInterval));
  EXPECT_TRUE(limiter.allow(kIpB, 4, kInterval, kInterval));
}

TEST(CnpRateLimiter, PerDestIpPacesEachRemoteIndependently) {
  CnpRateLimiter limiter(CnpRateLimitMode::kPerDestIp);
  EXPECT_TRUE(limiter.allow(kIpA, 1, 0, kInterval));
  EXPECT_TRUE(limiter.allow(kIpB, 1, 100, kInterval));   // other IP: fresh
  EXPECT_FALSE(limiter.allow(kIpA, 2, 200, kInterval));  // same IP: paced
  EXPECT_TRUE(limiter.allow(kIpA, 2, kInterval + 1, kInterval));
}

TEST(CnpRateLimiter, PerQpPacesEachQpIndependently) {
  CnpRateLimiter limiter(CnpRateLimitMode::kPerQp);
  EXPECT_TRUE(limiter.allow(kIpA, 1, 0, kInterval));
  EXPECT_TRUE(limiter.allow(kIpA, 2, 1, kInterval));     // other QP: fresh
  EXPECT_FALSE(limiter.allow(kIpA, 1, 100, kInterval));  // same QP: paced
  EXPECT_TRUE(limiter.allow(kIpA, 1, kInterval, kInterval));
}

TEST(CnpRateLimiter, ZeroIntervalMeansCnpPerPacket) {
  CnpRateLimiter limiter(CnpRateLimitMode::kPerPort);
  for (Tick t = 0; t < 10; ++t) {
    EXPECT_TRUE(limiter.allow(kIpA, 1, t, 0));
  }
}

class LimiterSweep : public ::testing::TestWithParam<CnpRateLimitMode> {};

TEST_P(LimiterSweep, EmissionRateBoundedByInterval) {
  CnpRateLimiter limiter(GetParam());
  int emitted = 0;
  // One congested QP: regardless of scope, its CNPs respect the interval.
  for (Tick t = 0; t < 100 * kMicrosecond; t += 500) {
    if (limiter.allow(kIpA, 7, t, kInterval)) ++emitted;
  }
  EXPECT_LE(emitted, 26);  // 100us / 4us + 1
  EXPECT_GE(emitted, 24);
}

INSTANTIATE_TEST_SUITE_P(Scopes, LimiterSweep,
                         ::testing::Values(CnpRateLimitMode::kPerPort,
                                           CnpRateLimitMode::kPerDestIp,
                                           CnpRateLimitMode::kPerQp));

TEST(CnpRateLimiter, ModeToString) {
  EXPECT_EQ(to_string(CnpRateLimitMode::kPerPort), "per-port");
  EXPECT_EQ(to_string(CnpRateLimitMode::kPerDestIp), "per-dest-ip");
  EXPECT_EQ(to_string(CnpRateLimitMode::kPerQp), "per-qp");
}

// ---------------------------------------------------------------------------
// Device profile invariants (§6 encoded parameters)
// ---------------------------------------------------------------------------

TEST(DeviceProfile, EncodesPaperFindings) {
  const auto& cx4 = DeviceProfile::get(NicType::kCx4Lx);
  const auto& cx5 = DeviceProfile::get(NicType::kCx5);
  const auto& cx6 = DeviceProfile::get(NicType::kCx6Dx);
  const auto& e810 = DeviceProfile::get(NicType::kE810);

  // Fig. 8/9 orderings.
  EXPECT_GT(cx4.nack_react_delay_write, 20 * cx5.nack_react_delay_write);
  EXPECT_GT(e810.nack_gen_delay_read, 1000 * e810.nack_gen_delay_write);
  EXPECT_GT(cx4.nack_gen_delay_read, 10 * cx4.nack_gen_delay_write);
  EXPECT_LT(cx5.nack_gen_delay_read, 5 * kMicrosecond);
  EXPECT_LT(cx6.nack_gen_delay_read, 5 * kMicrosecond);

  // §6.2 bugs live on the right devices only.
  EXPECT_TRUE(cx6.bug_nonwork_conserving_ets);
  EXPECT_FALSE(cx5.bug_nonwork_conserving_ets);
  EXPECT_TRUE(cx4.bug_noisy_neighbor);
  EXPECT_FALSE(e810.bug_noisy_neighbor);
  EXPECT_TRUE(cx5.apm_slow_path_on_mig_req0);
  EXPECT_FALSE(cx6.apm_slow_path_on_mig_req0);
  EXPECT_TRUE(e810.bug_cnp_sent_counter_stuck);
  EXPECT_TRUE(cx4.bug_implied_nak_counter_stuck);
  EXPECT_FALSE(cx5.bug_implied_nak_counter_stuck);

  // §6.2.3 MigReq defaults.
  EXPECT_FALSE(e810.mig_req_default);
  EXPECT_TRUE(cx4.mig_req_default && cx5.mig_req_default &&
              cx6.mig_req_default);

  // §6.3 CNP scopes and intervals.
  EXPECT_EQ(cx4.cnp_mode, CnpRateLimitMode::kPerDestIp);
  EXPECT_EQ(cx5.cnp_mode, CnpRateLimitMode::kPerPort);
  EXPECT_EQ(cx6.cnp_mode, CnpRateLimitMode::kPerPort);
  EXPECT_EQ(e810.cnp_mode, CnpRateLimitMode::kPerQp);
  EXPECT_FALSE(e810.cnp_interval_configurable);
  EXPECT_NEAR(to_us(e810.default_min_time_between_cnps), 50.0, 1.0);

  // §6.3 adaptive retransmission: NVIDIA only.
  EXPECT_TRUE(cx4.adaptive_retrans_available);
  EXPECT_TRUE(cx5.adaptive_retrans_available);
  EXPECT_TRUE(cx6.adaptive_retrans_available);
  EXPECT_FALSE(e810.adaptive_retrans_available);
}

}  // namespace
}  // namespace lumina
