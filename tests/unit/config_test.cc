// Unit tests for typed test-configuration loading (config/test_config).
#include <gtest/gtest.h>

#include "config/test_config.h"
#include "rnic/verbs.h"

namespace lumina {
namespace {

TEST(Config, VerbParsing) {
  EXPECT_EQ(parse_verb("write"), RdmaVerb::kWrite);
  EXPECT_EQ(parse_verb("read"), RdmaVerb::kRead);
  EXPECT_EQ(parse_verb("send"), RdmaVerb::kSendRecv);
  EXPECT_EQ(parse_verb("send-recv"), RdmaVerb::kSendRecv);
  EXPECT_EQ(parse_verb("send_recv"), RdmaVerb::kSendRecv);
  EXPECT_FALSE(parse_verb("atomic").has_value());
  EXPECT_EQ(to_string(RdmaVerb::kRead), "read");
}

TEST(Config, NicTypeParsing) {
  EXPECT_EQ(parse_nic_type("cx4"), NicType::kCx4Lx);
  EXPECT_EQ(parse_nic_type("cx4lx"), NicType::kCx4Lx);
  EXPECT_EQ(parse_nic_type("cx5"), NicType::kCx5);
  EXPECT_EQ(parse_nic_type("cx6"), NicType::kCx6Dx);
  EXPECT_EQ(parse_nic_type("cx6dx"), NicType::kCx6Dx);
  EXPECT_EQ(parse_nic_type("e810"), NicType::kE810);
  EXPECT_EQ(parse_nic_type("soft-roce"), NicType::kSoftRoce);
  EXPECT_EQ(parse_nic_type("rxe"), NicType::kSoftRoce);
  EXPECT_EQ(to_string(NicType::kSoftRoce), "soft-roce");
  EXPECT_FALSE(parse_nic_type("cx9").has_value());
}

TEST(Config, LoadsHostBlock) {
  const YamlNode root = parse_yaml(R"(
workspace: /tmp/ws
control-ip: host-a
nic:
  type: e810
  if-name: ens1
  switch-port: 12
  ip-list: [192.168.1.5/24]
roce-parameters:
  dcqcn-rp-enable: False
  min-time-between-cnps: 8
  adaptive-retrans: True
)");
  const HostConfig cfg = load_host_config(root);
  EXPECT_EQ(cfg.workspace, "/tmp/ws");
  EXPECT_EQ(cfg.control_ip, "host-a");
  EXPECT_EQ(cfg.nic_type, NicType::kE810);
  EXPECT_EQ(cfg.if_name, "ens1");
  EXPECT_EQ(cfg.switch_port, 12);
  ASSERT_EQ(cfg.ip_list.size(), 1u);
  EXPECT_EQ(cfg.ip_list[0].to_string(), "192.168.1.5");
  EXPECT_FALSE(cfg.roce.dcqcn_rp_enable);
  EXPECT_TRUE(cfg.roce.dcqcn_np_enable);  // default
  EXPECT_EQ(cfg.roce.min_time_between_cnps, 8 * kMicrosecond);
  EXPECT_TRUE(cfg.roce.adaptive_retrans);
}

TEST(Config, CnpIntervalUnsetMeansDeviceDefault) {
  const HostConfig unset = load_host_config(parse_yaml("nic:\n  type: cx5\n"));
  EXPECT_LT(unset.roce.min_time_between_cnps, 0);  // sentinel: unset
  const HostConfig zero = load_host_config(parse_yaml(
      "nic:\n  type: cx5\nroce-parameters:\n  min-time-between-cnps: 0\n"));
  EXPECT_EQ(zero.roce.min_time_between_cnps, 0);  // explicit 0 = no limit
}

TEST(Config, LoadsTrafficBlock) {
  const YamlNode root = parse_yaml(R"(
num-connections: 4
rdma-verb: read
num-msgs-per-qp: 7
mtu: 4096
message-size: 1048576
multi-gid: true
barrier-sync: true
tx-depth: 3
min-retransmit-timeout: 10
max-retransmit-retry: 5
data-pkt-events:
- {qpn: 1, psn: 4, type: ecn, iter: 1}
- {qpn: 2, psn: 5, type: drop, iter: 2}
- {qpn: 3, psn: 9, type: corrupt, iter: 1}
)");
  const TrafficConfig cfg = load_traffic_config(root);
  EXPECT_EQ(cfg.num_connections, 4);
  EXPECT_EQ(cfg.verb, RdmaVerb::kRead);
  EXPECT_EQ(cfg.num_msgs_per_qp, 7);
  EXPECT_EQ(cfg.mtu, 4096u);
  EXPECT_EQ(cfg.message_size, 1048576u);
  EXPECT_TRUE(cfg.multi_gid);
  EXPECT_TRUE(cfg.barrier_sync);
  EXPECT_EQ(cfg.tx_depth, 3);
  EXPECT_EQ(cfg.min_retransmit_timeout, 10);
  EXPECT_EQ(cfg.max_retransmit_retry, 5);
  ASSERT_EQ(cfg.data_pkt_events.size(), 3u);
  EXPECT_EQ(cfg.data_pkt_events[0].type, EventType::kEcn);
  EXPECT_EQ(cfg.data_pkt_events[1].type, EventType::kDrop);
  EXPECT_EQ(cfg.data_pkt_events[1].iter, 2u);
  EXPECT_EQ(cfg.data_pkt_events[2].type, EventType::kCorrupt);
}

TEST(Config, TrafficDefaults) {
  const TrafficConfig cfg = load_traffic_config(parse_yaml("mtu: 1024\n"));
  EXPECT_EQ(cfg.num_connections, 1);
  EXPECT_EQ(cfg.verb, RdmaVerb::kWrite);
  EXPECT_EQ(cfg.min_retransmit_timeout, 14);
  EXPECT_EQ(cfg.max_retransmit_retry, 7);
  EXPECT_FALSE(cfg.barrier_sync);
  EXPECT_TRUE(cfg.data_pkt_events.empty());
}

TEST(Config, RejectsUnknownEnumValues) {
  EXPECT_THROW(load_traffic_config(parse_yaml("rdma-verb: atomic\n")),
               YamlError);
  EXPECT_THROW(load_host_config(parse_yaml("nic:\n  type: cx9\n")),
               YamlError);
  EXPECT_THROW(load_traffic_config(parse_yaml(
                   "data-pkt-events:\n- {qpn: 1, psn: 1, type: explode}\n")),
               YamlError);
  EXPECT_THROW(load_host_config(parse_yaml(
                   "nic:\n  type: cx5\n  ip-list: [999.0.0.1]\n")),
               YamlError);
}

TEST(Config, LoadsFullDocument) {
  const YamlNode root = parse_yaml(R"(
requester:
  nic:
    type: cx4
    ip-list: [10.0.0.2/24]
responder:
  nic:
    type: e810
    ip-list: [10.0.1.2/24]
traffic:
  num-connections: 2
  rdma-verb: send
)");
  const TestConfig cfg = load_test_config(root);
  EXPECT_EQ(cfg.requester().nic_type, NicType::kCx4Lx);
  EXPECT_EQ(cfg.responder().nic_type, NicType::kE810);
  EXPECT_EQ(cfg.traffic.verb, RdmaVerb::kSendRecv);
  EXPECT_EQ(cfg.traffic.num_connections, 2);
}

TEST(Config, LoadsHostsAndConnectionsSchema) {
  // Schema v2 (docs/topology.md): a hosts: list plus connection specs
  // addressed by host name or index, with an optional count multiplier.
  const YamlNode root = parse_yaml(R"(
hosts:
- name: sender0
  nic:
    type: cx6
- name: sender1
  nic:
    type: cx6
- name: sink
  nic:
    type: e810
    ip-list: [10.0.0.9/24]
connections:
- {src: sender0, dst: sink}
- {src: 1, dst: 2, count: 2}
traffic:
  rdma-verb: write
)");
  TestConfig cfg = load_test_config(root);
  ASSERT_EQ(cfg.hosts.size(), 3u);
  EXPECT_EQ(cfg.hosts[0].name, "sender0");
  EXPECT_EQ(cfg.hosts[2].nic_type, NicType::kE810);
  ASSERT_EQ(cfg.connections.size(), 3u);
  EXPECT_EQ(cfg.connections[0].src_host, 0);
  EXPECT_EQ(cfg.connections[0].dst_host, 2);
  EXPECT_EQ(cfg.connections[1].src_host, 1);
  EXPECT_EQ(cfg.connections[2].src_host, 1);
  EXPECT_EQ(cfg.connections[2].dst_host, 2);
  cfg.normalize();
  // num_connections mirrors the resolved list.
  EXPECT_EQ(cfg.traffic.num_connections, 3);
}

TEST(Config, ConnectionsResolveDefaultHostNames) {
  // Unnamed hosts 0/1 answer to the classic role aliases.
  const YamlNode root = parse_yaml(R"(
hosts:
- nic:
    type: cx5
- nic:
    type: cx5
connections:
- {src: requester, dst: responder}
)");
  const TestConfig cfg = load_test_config(root);
  ASSERT_EQ(cfg.connections.size(), 1u);
  EXPECT_EQ(cfg.connections[0].src_host, 0);
  EXPECT_EQ(cfg.connections[0].dst_host, 1);
}

TEST(Config, RejectsMixedSchemas) {
  EXPECT_THROW(load_test_config(parse_yaml(R"(
hosts:
- nic:
    type: cx5
requester:
  nic:
    type: cx5
)")),
               YamlError);
  EXPECT_THROW(load_test_config(parse_yaml(R"(
connections:
- {src: 0, dst: 1}
responder:
  nic:
    type: cx5
)")),
               YamlError);
}

TEST(Config, RejectsBadConnectionSpecs) {
  EXPECT_THROW(load_test_config(parse_yaml(
                   "hosts:\n- nic:\n    type: cx5\nconnections:\n"
                   "- {src: nowhere, dst: 0}\n")),
               YamlError);
  EXPECT_THROW(load_test_config(parse_yaml(
                   "connections:\n- {src: 0, dst: 1, count: 0}\n")),
               YamlError);
  // Out-of-range indices and self-loops surface at normalize() time.
  TestConfig out_of_range = load_test_config(
      parse_yaml("connections:\n- {src: 0, dst: 7}\n"));
  EXPECT_THROW(out_of_range.normalize(), YamlError);
  TestConfig self_loop =
      load_test_config(parse_yaml("connections:\n- {src: 1, dst: 1}\n"));
  EXPECT_THROW(self_loop.normalize(), YamlError);
}

TEST(Config, NormalizeRejectsDuplicateHostNames) {
  TestConfig cfg;
  cfg.host_at(0).name = "twin";
  cfg.host_at(1).name = "twin";
  EXPECT_THROW(cfg.normalize(), YamlError);
}

TEST(Config, NormalizeAssignsCollisionFreeIps) {
  // Host i defaults to 10.0.0.<i+1> for any host count...
  TestConfig cfg;
  cfg.host_at(3);  // four hosts, no ip-list anywhere
  cfg.normalize();
  ASSERT_EQ(cfg.hosts.size(), 4u);
  EXPECT_EQ(cfg.hosts[0].ip_list.at(0).to_string(), "10.0.0.1");
  EXPECT_EQ(cfg.hosts[1].ip_list.at(0).to_string(), "10.0.0.2");
  EXPECT_EQ(cfg.hosts[2].ip_list.at(0).to_string(), "10.0.0.3");
  EXPECT_EQ(cfg.hosts[3].ip_list.at(0).to_string(), "10.0.0.4");

  // ...and skips addresses the config already claims instead of colliding.
  TestConfig taken;
  taken.host_at(0).ip_list = {*Ipv4Address::parse("10.0.0.2")};
  taken.host_at(2);
  taken.normalize();
  EXPECT_EQ(taken.hosts[0].ip_list.at(0).to_string(), "10.0.0.2");
  EXPECT_EQ(taken.hosts[1].ip_list.at(0).to_string(), "10.0.0.3");
  EXPECT_EQ(taken.hosts[2].ip_list.at(0).to_string(), "10.0.0.4");
}

TEST(Config, NumConnectionsSweepConflictsWithExplicitList) {
  TestConfig cfg = load_test_config(
      parse_yaml("connections:\n- {src: 0, dst: 1}\n"));
  EXPECT_THROW(apply_traffic_override(cfg, "num-connections", YamlNode::scalar("4")),
               YamlError);
  // Without an explicit list the sweep still works.
  TestConfig classic;
  apply_traffic_override(classic, "num-connections", YamlNode::scalar("4"));
  EXPECT_EQ(classic.traffic.num_connections, 4);
}

TEST(Config, IbTimeoutFormula) {
  EXPECT_EQ(ib_timeout_to_rto(0), 4096);
  EXPECT_EQ(ib_timeout_to_rto(1), 8192);
  EXPECT_EQ(ib_timeout_to_rto(14), Tick{4096} << 14);  // 67.1 ms
  EXPECT_NEAR(to_ms(ib_timeout_to_rto(14)), 67.1, 0.1);
}

// ---------------------------------------------------------------------------
// Event vocabulary: string maps and fault-parameter round trips
// ---------------------------------------------------------------------------

TEST(Config, EventTypeStringsRoundTripEveryValue) {
  // Walk the whole enum through both string maps. Growing EventType
  // without updating to_string(), parse_event_type(), AND kNumEventTypes
  // fails here instead of silently formatting "unknown" somewhere.
  for (int v = 0; v < kNumEventTypes; ++v) {
    const auto type = static_cast<EventType>(v);
    const std::string name = to_string(type);
    EXPECT_NE(name, "unknown") << "to_string missing enum value " << v;
    const auto parsed = parse_event_type(name);
    ASSERT_TRUE(parsed.has_value()) << "parse_event_type missing '" << name
                                    << "'";
    EXPECT_EQ(*parsed, type) << name;
  }
  // The sentinel one past the end must NOT format or parse: if it does,
  // kNumEventTypes lags the enum.
  EXPECT_EQ(to_string(static_cast<EventType>(kNumEventTypes)), "unknown");
  EXPECT_FALSE(parse_event_type("unknown").has_value());
  EXPECT_FALSE(parse_event_type("").has_value());
}

TEST(Config, LoadsFaultEventParameters) {
  const TrafficConfig cfg = load_traffic_config(parse_yaml(R"(
data-pkt-events:
- {qpn: 1, psn: 4, type: duplicate, iter: 1}
- {qpn: 1, psn: 5, type: burst-loss, iter: 1, ge-p: 0.4, ge-r: 0.6, duration-us: 30}
- {qpn: 2, psn: 2, type: pause-storm, iter: 1, duration-us: 100, priority: 3}
- {qpn: 2, psn: 3, type: link-flap, iter: 1, duration-us: 10, queued: hold}
)"));
  ASSERT_EQ(cfg.data_pkt_events.size(), 4u);
  EXPECT_EQ(cfg.data_pkt_events[0].type, EventType::kDuplicate);
  const DataPacketEvent& burst = cfg.data_pkt_events[1];
  EXPECT_EQ(burst.type, EventType::kBurstLoss);
  EXPECT_DOUBLE_EQ(burst.fault.ge_p, 0.4);
  EXPECT_DOUBLE_EQ(burst.fault.ge_r, 0.6);
  EXPECT_EQ(burst.fault.duration, 30 * kMicrosecond);
  const DataPacketEvent& storm = cfg.data_pkt_events[2];
  EXPECT_EQ(storm.type, EventType::kPauseStorm);
  EXPECT_EQ(storm.fault.duration, 100 * kMicrosecond);
  EXPECT_EQ(storm.fault.priority, 3);
  const DataPacketEvent& flap = cfg.data_pkt_events[3];
  EXPECT_EQ(flap.type, EventType::kLinkFlap);
  EXPECT_EQ(flap.fault.duration, 10 * kMicrosecond);
  EXPECT_FALSE(flap.fault.flap_drops_queued);

  EXPECT_THROW(load_traffic_config(parse_yaml(
                   "data-pkt-events:\n"
                   "- {qpn: 1, psn: 1, type: link-flap, queued: maybe}\n")),
               YamlError);
}

TEST(Config, SerializeRoundTripsFaultEvents) {
  TestConfig cfg;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 20480;
  DataPacketEvent dup{1, 4, EventType::kDuplicate, 1};
  DataPacketEvent burst{1, 5, EventType::kBurstLoss, 1};
  burst.fault.ge_p = 0.3;
  burst.fault.ge_r = 0.7;
  burst.fault.duration = 25 * kMicrosecond;
  DataPacketEvent storm{2, 2, EventType::kPauseStorm, 1};
  storm.fault.duration = 80 * kMicrosecond;
  storm.fault.priority = 1;
  DataPacketEvent flap{2, 3, EventType::kLinkFlap, 1};
  flap.fault.duration = 12 * kMicrosecond;
  flap.fault.flap_drops_queued = false;
  DataPacketEvent delay{1, 6, EventType::kDelay, 2};
  delay.delay = 40 * kMicrosecond;
  cfg.traffic.data_pkt_events = {dup, burst, storm, flap, delay};

  const std::string text = serialize_test_config(cfg);
  const TestConfig back = load_test_config(parse_yaml(text));
  ASSERT_EQ(back.traffic.data_pkt_events.size(), 5u);
  EXPECT_EQ(back.traffic.data_pkt_events, cfg.traffic.data_pkt_events);
  // Canonical encoding: re-serializing the parsed config is a fixpoint —
  // the property the fuzz corpus byte-determinism rests on.
  EXPECT_EQ(serialize_test_config(back), text);
}

TEST(Config, ShardsKeyParsesIntegersAndAuto) {
  EXPECT_EQ(load_test_config(parse_yaml("traffic:\n  mtu: 1024\n")).shards, 1);
  EXPECT_EQ(load_test_config(parse_yaml("shards: 4\n")).shards, 4);
  // `auto` is the 0 sentinel; the testbed resolves it to
  // min(hardware_threads, num_domains) at construction.
  EXPECT_EQ(load_test_config(parse_yaml("shards: auto\n")).shards, 0);
  EXPECT_THROW(load_test_config(parse_yaml("shards: 0\n")), YamlError);
  EXPECT_THROW(load_test_config(parse_yaml("shards: -2\n")), YamlError);
}

TEST(Config, SerializeRoundTripsShards) {
  TestConfig cfg;
  // Default stays invisible: pre-cutover configs serialize byte-identically.
  EXPECT_EQ(serialize_test_config(cfg).find("shards"), std::string::npos);

  cfg.shards = 3;
  TestConfig back = load_test_config(parse_yaml(serialize_test_config(cfg)));
  EXPECT_EQ(back.shards, 3);

  cfg.shards = 0;
  const std::string text = serialize_test_config(cfg);
  EXPECT_NE(text.find("shards: auto"), std::string::npos);
  back = load_test_config(parse_yaml(text));
  EXPECT_EQ(back.shards, 0);
  EXPECT_EQ(serialize_test_config(back), text);
}

}  // namespace
}  // namespace lumina
