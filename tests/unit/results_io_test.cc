// Round-trip tests for orchestrator/results_io: write_results followed by
// read_results must reproduce every artifact field-by-field from the
// in-memory TestResult, including the empty-flows and unfinished-run edge
// cases, and failures must name the artifact that could not be written.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "config/test_config.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/results_io.h"

namespace lumina {
namespace {

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lumina_results_io_" + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

const char* status_label(const MessageRecord& msg) {
  return msg.completed_at < 0 ? "in-flight"
         : msg.status == WcStatus::kSuccess ? "success"
         : msg.status == WcStatus::kRetryExceeded ? "retry-exceeded"
         : msg.status == WcStatus::kRnrRetryExceeded ? "rnr-retry-exceeded"
                                                     : "flushed";
}

/// Field-by-field comparison of a parsed results directory against the
/// in-memory TestResult it was written from.
void expect_round_trip(const TestResult& result, const ReadResults& read) {
  // trace.pcap: packet count, nanosecond timestamps, exact bytes.
  ASSERT_EQ(read.trace.size(), result.trace.size());
  for (std::size_t i = 0; i < read.trace.size(); ++i) {
    const TracePacket& expect = result.trace[i];
    EXPECT_EQ(read.trace[i].timestamp, expect.time()) << "packet " << i;
    const std::size_t orig =
        expect.orig_len == 0 ? expect.pkt.size() : expect.orig_len;
    EXPECT_EQ(read.trace[i].orig_len, orig) << "packet " << i;
    EXPECT_EQ(read.trace[i].bytes, expect.pkt.bytes) << "packet " << i;
  }

  EXPECT_EQ(read.integrity, result.integrity.to_string());

  // NIC counters: every entry present with the exact value.
  for (const auto& [name, value] : result.requester_counters().entries()) {
    ASSERT_TRUE(read.requester_counters.count(name)) << name;
    EXPECT_EQ(read.requester_counters.at(name), value) << name;
  }
  for (const auto& [name, value] : result.responder_counters().entries()) {
    ASSERT_TRUE(read.responder_counters.count(name)) << name;
    EXPECT_EQ(read.responder_counters.at(name), value) << name;
  }
  EXPECT_EQ(read.switch_counters.at("roce_rx"),
            result.switch_counters.roce_rx);
  EXPECT_EQ(read.switch_counters.at("roce_tx"),
            result.switch_counters.roce_tx);
  EXPECT_EQ(read.switch_counters.at("mirrored"),
            result.switch_counters.mirrored);
  EXPECT_EQ(read.switch_counters.at("events_applied"),
            result.switch_counters.events_applied);
  EXPECT_EQ(read.switch_counters.at("dropped_by_event"),
            result.switch_counters.dropped_by_event);

  // flows.csv: one row per message, in (connection, message) order.
  std::size_t rows = 0;
  for (const auto& flow : result.flows) rows += flow.messages.size();
  ASSERT_EQ(read.flows.size(), rows);
  std::size_t row = 0;
  for (std::size_t c = 0; c < result.flows.size(); ++c) {
    for (const auto& msg : result.flows[c].messages) {
      const ReadFlowRow& parsed = read.flows[row++];
      EXPECT_EQ(parsed.connection, c);
      EXPECT_EQ(parsed.msg_index, msg.msg_index);
      EXPECT_EQ(parsed.posted_at, msg.posted_at);
      EXPECT_EQ(parsed.completed_at, msg.completed_at);
      EXPECT_EQ(parsed.status, status_label(msg));
      if (msg.completed_at < 0) {
        EXPECT_DOUBLE_EQ(parsed.completion_time_us, -1.0);
      } else {
        EXPECT_NEAR(parsed.completion_time_us, to_us(msg.completion_time()),
                    1e-3);
      }
    }
  }

  ASSERT_EQ(read.connections.size(), result.connections.size());
}

TestResult run_small_experiment() {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx6Dx;
  cfg.responder().nic_type = NicType::kCx6Dx;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 4096;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 2, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  return orch.run();
}

TEST(ResultsIo, RoundTripsFullExperiment) {
  const TestResult result = run_small_experiment();
  ASSERT_GT(result.trace.size(), 0u);

  const std::string dir = temp_dir("full");
  std::string failed;
  ASSERT_TRUE(write_results(result, dir, &failed)) << failed;

  ReadResults read;
  ASSERT_TRUE(read_results(dir, &read, &failed)) << failed;
  expect_round_trip(result, read);
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, RoundTripsEmptyFlows) {
  // A synthetic result with no flows, no connections, and no packets —
  // the files must still be written and read back as empty tables.
  TestResult result;
  result.integrity.trace_packets = 0;

  const std::string dir = temp_dir("empty");
  std::string failed;
  ASSERT_TRUE(write_results(result, dir, &failed)) << failed;

  ReadResults read;
  ASSERT_TRUE(read_results(dir, &read, &failed)) << failed;
  EXPECT_TRUE(read.trace.empty());
  EXPECT_TRUE(read.flows.empty());
  EXPECT_TRUE(read.connections.empty());
  EXPECT_EQ(read.integrity, result.integrity.to_string());
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, RoundTripsUnfinishedRun) {
  // An unfinished run: one message still in flight (completed_at < 0).
  TestResult result;
  result.finished = false;
  FlowMetrics flow;
  flow.message_size = 1024;
  MessageRecord done;
  done.msg_index = 0;
  done.posted_at = 100;
  done.completed_at = 2100;
  MessageRecord pending;
  pending.msg_index = 1;
  pending.posted_at = 2200;
  pending.completed_at = -1;
  flow.messages = {done, pending};
  result.flows.push_back(flow);

  const std::string dir = temp_dir("unfinished");
  std::string failed;
  ASSERT_TRUE(write_results(result, dir, &failed)) << failed;

  ReadResults read;
  ASSERT_TRUE(read_results(dir, &read, &failed)) << failed;
  expect_round_trip(result, read);
  ASSERT_EQ(read.flows.size(), 2u);
  EXPECT_EQ(read.flows[1].status, "in-flight");
  EXPECT_EQ(read.flows[1].completed_at, -1);
  EXPECT_DOUBLE_EQ(read.flows[1].completion_time_us, -1.0);
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, WriteFailureNamesThePath) {
  TestResult result;
  std::string failed;
  EXPECT_FALSE(
      write_results(result, "/proc/definitely/not/writable", &failed));
  EXPECT_FALSE(failed.empty());
  EXPECT_NE(failed.find("/proc/definitely/not/writable"), std::string::npos);
}

TEST(ResultsIo, ReadFailureNamesTheMissingArtifact) {
  const std::string dir = temp_dir("missing");
  std::filesystem::create_directories(dir);
  ReadResults read;
  std::string failed;
  EXPECT_FALSE(read_results(dir, &read, &failed));
  EXPECT_EQ(failed, dir + "/trace.pcap");
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, ReadRejectsCorruptPcap) {
  const TestResult result = run_small_experiment();
  const std::string dir = temp_dir("corrupt");
  ASSERT_TRUE(write_results(result, dir));

  // Truncate the pcap mid-record: read_results must flag it.
  const std::string pcap = dir + "/trace.pcap";
  const auto full = std::filesystem::file_size(pcap);
  std::filesystem::resize_file(pcap, full - 7);
  ReadResults read;
  std::string failed;
  EXPECT_FALSE(read_results(dir, &read, &failed));
  EXPECT_EQ(failed, pcap);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lumina
