// Property test for sim/event_id_table.h.
//
// The table was previously exercised only indirectly through the scheduler
// differential suites; this drives it directly against a naive model
// (a dead-id hash set plus per-chunk dead counts) under the cancel-heavy
// churn pattern the sharded lanes and the RNIC timer path produce:
// dense allocation bursts, kills in random order, repeat kills, probes of
// never-issued ids, and full-chunk retirement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_id_table.h"

namespace lumina {
namespace {

/// Naive model: explicit dead set + per-chunk dead counters.
class ModelTable {
 public:
  void on_allocated(std::uint64_t id) { allocated_ = std::max(allocated_, id); }

  bool dead(std::uint64_t id) const {
    if (id > allocated_) return false;
    return dead_.count(id) != 0;
  }

  bool kill(std::uint64_t id) {
    if (id == 0 || id > allocated_) return false;
    if (!dead_.insert(id).second) return false;
    ++chunk_dead_[(id - 1) / EventIdTable::kIdsPerChunk];
    return true;
  }

  /// Chunks touched by allocation whose ids are not yet all dead.
  std::size_t live_chunks() const {
    if (allocated_ == 0) return 0;
    const std::uint64_t chunks =
        (allocated_ - 1) / EventIdTable::kIdsPerChunk + 1;
    std::size_t live = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const auto it = chunk_dead_.find(c);
      if (it == chunk_dead_.end() || it->second < EventIdTable::kIdsPerChunk) {
        ++live;
      }
    }
    return live;
  }

 private:
  std::uint64_t allocated_ = 0;
  std::unordered_set<std::uint64_t> dead_;
  std::unordered_map<std::uint64_t, std::uint64_t> chunk_dead_;
};

TEST(EventIdTable, CancelHeavyChurnMatchesModel) {
  for (int seed = 1; seed <= 20; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL);
    EventIdTable table;
    ModelTable model;
    std::uint64_t next_id = 1;
    std::vector<std::uint64_t> issued;

    for (int step = 0; step < 4000; ++step) {
      switch (rng() % 4) {
        case 0: {  // allocation burst (timer storm arming)
          const int burst = 1 + static_cast<int>(rng() % 300);
          for (int i = 0; i < burst; ++i) {
            table.on_allocated(next_id);
            model.on_allocated(next_id);
            issued.push_back(next_id);
            ++next_id;
          }
          break;
        }
        case 1: {  // probe: dead() agreement on issued and never-issued ids
          const std::uint64_t id =
              rng() % 2 == 0 && !issued.empty()
                  ? issued[rng() % issued.size()]
                  : next_id + rng() % 10'000;
          ASSERT_EQ(table.dead(id), model.dead(id))
              << "seed " << seed << " id " << id;
          break;
        }
        default: {  // cancel-heavy churn: kills dominate, often repeated
          if (issued.empty()) break;
          const int kills = 1 + static_cast<int>(rng() % 200);
          for (int i = 0; i < kills; ++i) {
            const std::uint64_t id = issued[rng() % issued.size()];
            ASSERT_EQ(table.kill(id), model.kill(id))
                << "seed " << seed << " id " << id;
          }
          break;
        }
      }
      if (step % 256 == 0) {
        ASSERT_EQ(table.live_chunks(), model.live_chunks())
            << "seed " << seed << " step " << step;
      }
    }
    EXPECT_EQ(table.live_chunks(), model.live_chunks()) << "seed " << seed;
  }
}

TEST(EventIdTable, ChunkRetiresExactlyAtFullDeath) {
  EventIdTable table;
  for (std::uint64_t id = 1; id <= EventIdTable::kIdsPerChunk; ++id) {
    table.on_allocated(id);
  }
  EXPECT_EQ(table.live_chunks(), 1u);
  // Kill all but one id, in a scrambled order.
  std::vector<std::uint64_t> order;
  for (std::uint64_t id = 1; id <= EventIdTable::kIdsPerChunk; ++id) {
    order.push_back(id);
  }
  std::mt19937_64 rng(12345);
  std::shuffle(order.begin(), order.end(), rng);
  const std::uint64_t survivor = order.back();
  order.pop_back();
  for (const std::uint64_t id : order) {
    ASSERT_TRUE(table.kill(id));
  }
  EXPECT_EQ(table.live_chunks(), 1u);  // one id still alive
  EXPECT_FALSE(table.dead(survivor));
  ASSERT_TRUE(table.kill(survivor));
  EXPECT_EQ(table.live_chunks(), 0u);  // retired at the 4096th death
  // Retired-chunk ids are dead by definition; killing them again is false.
  EXPECT_TRUE(table.dead(survivor));
  EXPECT_FALSE(table.kill(survivor));
  // A new chunk after retirement starts live again.
  table.on_allocated(EventIdTable::kIdsPerChunk + 1);
  EXPECT_EQ(table.live_chunks(), 1u);
  EXPECT_FALSE(table.dead(EventIdTable::kIdsPerChunk + 1));
}

TEST(EventIdTable, NeverIssuedIdsAreInert) {
  EventIdTable table;
  EXPECT_FALSE(table.dead(1));
  EXPECT_FALSE(table.kill(1));
  table.on_allocated(1);
  EXPECT_FALSE(table.dead(2));      // beyond the allocated range
  EXPECT_FALSE(table.kill(50'000));  // far beyond any chunk
  EXPECT_TRUE(table.kill(1));
  EXPECT_FALSE(table.kill(1));
}

}  // namespace
}  // namespace lumina
