// The parse-view cache invalidation contract (docs/packet.md): every
// in-place mutator must leave the cached view identical to what a fresh
// decode of the mutated bytes would produce, across full, trimmed, and
// arena-recycled packets.
#include <gtest/gtest.h>

#include "packet/addresses.h"
#include "packet/bytes.h"
#include "packet/packet_arena.h"
#include "packet/roce_packet.h"

namespace lumina {
namespace {

RocePacketSpec base_spec() {
  RocePacketSpec spec;
  spec.src_mac = MacAddress::from_u48(0x0200000000aa);
  spec.dst_mac = MacAddress::from_u48(0x0200000000bb);
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0x2000, 0x42, 1024};
  spec.payload_len = 1024;
  spec.dest_qpn = 0x010203;
  spec.psn = 0x000042;
  return spec;
}

/// Fresh decode of the same bytes, bypassing pkt's cache.
RoceView fresh_view(const Packet& pkt, bool allow_trimmed = false) {
  Packet copy;
  copy.bytes = pkt.bytes;
  const auto view = parse_roce(copy, allow_trimmed);
  EXPECT_TRUE(view.has_value());
  return view.value_or(RoceView{});
}

TEST(ViewCache, FirstParsePopulatesAndRepeatParsesServe) {
  Packet pkt = build_roce_packet(base_spec());
  EXPECT_EQ(pkt.view_state, ViewCacheState::kUnknown);
  const auto first = parse_roce(pkt);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(pkt.view_state, ViewCacheState::kFull);
  // Later hops (any parse mode — a full view satisfies both).
  EXPECT_EQ(parse_roce(pkt), first);
  EXPECT_EQ(parse_roce(pkt, /*allow_trimmed=*/true), first);
}

TEST(ViewCache, EveryMutatorAgreesWithFreshParse) {
  Packet pkt = build_roce_packet(base_spec());
  ASSERT_TRUE(parse_roce(pkt).has_value());

  set_ecn_ce(pkt);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_ecn_ce";
  set_ttl(pkt, 7);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_ttl";
  set_src_mac(pkt, 0x00005eed5eedULL);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_src_mac";
  set_dst_mac(pkt, 0x0000c0ffeeeeULL);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_dst_mac";
  set_udp_dst_port(pkt, 12345);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_udp_dst_port";
  set_mig_req(pkt, false);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_mig_req off";
  set_mig_req(pkt, true);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "set_mig_req on";
  refresh_icrc(pkt);
  EXPECT_EQ(pkt.view, fresh_view(pkt)) << "refresh_icrc";
}

TEST(ViewCache, MutatorsBeforeFirstParseAlsoAgree) {
  // Mutating a never-parsed packet must not fabricate a cache entry.
  Packet pkt = build_roce_packet(base_spec());
  set_ttl(pkt, 9);
  set_mig_req(pkt, false);
  EXPECT_EQ(pkt.view_state, ViewCacheState::kUnknown);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ttl, 9);
  EXPECT_FALSE(view->bth.mig_req);
}

TEST(ViewCache, PayloadCorruptionKeepsCacheHeaderFlipDropsIt) {
  Packet pkt = build_roce_packet(base_spec());
  ASSERT_TRUE(parse_roce(pkt).has_value());
  corrupt_payload_bit(pkt, 123);  // payload byte: headers unchanged
  EXPECT_EQ(pkt.view_state, ViewCacheState::kFull);
  EXPECT_EQ(pkt.view, fresh_view(pkt));

  // Zero-payload frame: the fallback flips a header byte, which the view
  // cannot describe — the cache must drop.
  RocePacketSpec ack = base_spec();
  ack.opcode = IbOpcode::kAcknowledge;
  ack.reth.reset();
  ack.payload_len = 0;
  ack.aeth = Aeth::ack(1);
  Packet nak = build_roce_packet(ack);
  ASSERT_TRUE(parse_roce(nak).has_value());
  corrupt_payload_bit(nak);
  EXPECT_EQ(nak.view_state, ViewCacheState::kUnknown);
}

TEST(ViewCache, DirectByteWriteWithInvalidateRedecodes) {
  Packet pkt = build_roce_packet(base_spec());
  ASSERT_TRUE(parse_roce(pkt).has_value());
  // Raw write outside the mutator API: caller must invalidate.
  poke_u16(pkt.span(), off::kBthPsn + 1, 0x1234);
  pkt.invalidate_view();
  EXPECT_EQ(pkt.view_state, ViewCacheState::kUnknown);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bth.psn & 0xffffu, 0x1234u);
}

TEST(ViewCache, TrimmedFrameStatesTrackParseMode) {
  Packet pkt = build_roce_packet(base_spec());
  pkt.bytes.resize(128);  // dumper-style trim of a never-parsed frame
  // Full parse fails and must not poison the trimmed mode.
  EXPECT_FALSE(parse_roce(pkt).has_value());
  EXPECT_EQ(pkt.view_state, ViewCacheState::kNotFull);
  const auto trimmed = parse_roce(pkt, /*allow_trimmed=*/true);
  ASSERT_TRUE(trimmed.has_value());
  EXPECT_EQ(pkt.view_state, ViewCacheState::kTrimmed);
  EXPECT_EQ(trimmed->payload_len, 1024u);
  EXPECT_EQ(trimmed->icrc, 0u);
  // A cached trimmed view still never satisfies a full parse.
  EXPECT_FALSE(parse_roce(pkt).has_value());
  // And the cached trimmed view matches a fresh trimmed decode even after
  // mutators run on it (the dumper's restore-port path).
  Packet copy;
  copy.bytes = pkt.bytes;
  set_udp_dst_port(pkt, kRoceUdpPort);
  set_udp_dst_port(copy, kRoceUdpPort);
  copy.invalidate_view();
  EXPECT_EQ(pkt.view, parse_roce(copy, /*allow_trimmed=*/true).value());
}

TEST(ViewCache, NonRoceFrameCachesTheRejection) {
  Packet junk;
  junk.bytes.assign(64, 0xcc);
  EXPECT_FALSE(parse_roce(junk, /*allow_trimmed=*/true).has_value());
  EXPECT_EQ(junk.view_state, ViewCacheState::kUnparseable);
  // Both modes now short-circuit.
  EXPECT_FALSE(parse_roce(junk).has_value());
  EXPECT_FALSE(parse_roce(junk, /*allow_trimmed=*/true).has_value());
}

TEST(ViewCache, CopiesCarryTheCacheIndependently) {
  Packet pkt = build_roce_packet(base_spec());
  ASSERT_TRUE(parse_roce(pkt).has_value());
  Packet copy = pkt;
  EXPECT_EQ(copy.view_state, ViewCacheState::kFull);
  EXPECT_EQ(copy.view, pkt.view);
  // Mutating the copy must not leak into the original's cache.
  set_ttl(copy, 3);
  EXPECT_NE(copy.view.ttl, pkt.view.ttl);
  EXPECT_EQ(pkt.view, fresh_view(pkt));
  EXPECT_EQ(copy.view, fresh_view(copy));
}

TEST(ViewCache, ArenaSlotReuseCannotServeStaleViews) {
  // The cache lives on the Packet, not on the buffer: a packet built from a
  // recycled arena buffer starts kUnknown and decodes its own bytes, even
  // though a differently-shaped packet parsed out of that slot earlier.
  PacketArena arena;
  PacketArena::Scope scope(&arena);

  RocePacketSpec first_spec = base_spec();
  std::uint32_t first_psn = 0;
  {
    Packet first = build_roce_packet(first_spec);
    ScopedPacketReclaim reclaim(first);
    const auto view = parse_roce(first);
    ASSERT_TRUE(view.has_value());
    first_psn = view->bth.psn;
  }
  ASSERT_GE(arena.pooled(), 1u);

  RocePacketSpec second_spec = base_spec();
  second_spec.opcode = IbOpcode::kAcknowledge;
  second_spec.reth.reset();
  second_spec.payload_len = 0;
  second_spec.aeth = Aeth::ack(2);
  second_spec.psn = 0x000099;
  Packet second = build_roce_packet(second_spec);
  EXPECT_GE(arena.reused(), 1u);  // the slot actually recycled
  EXPECT_EQ(second.view_state, ViewCacheState::kUnknown);
  const auto view = parse_roce(second);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bth.opcode, IbOpcode::kAcknowledge);
  EXPECT_EQ(view->bth.psn, 0x000099u);
  EXPECT_NE(view->bth.psn, first_psn);
}

}  // namespace
}  // namespace lumina
