// Unit tests for the campaign layer: the lock-free parallel_map primitive,
// per-run seed derivation, YAML campaign expansion, and the deterministic
// summary/aggregation contract.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "campaign/campaign.h"
#include "campaign/campaign_config.h"
#include "campaign/parallel.h"
#include "fuzz/targets.h"
#include "suite/bug_detectors.h"

namespace lumina {
namespace {

TEST(ParallelMap, PreservesIndexOrder) {
  // Make early indices the slowest so completion order inverts spec order.
  const auto results = parallel_map<int>(16, 8, [](std::size_t i) {
    volatile int sink = 0;
    for (std::size_t n = 0; n < (16 - i) * 20000; ++n) sink = sink + 1;
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, EveryIndexRunsExactlyOnce) {
  std::atomic<int> calls{0};
  const auto results = parallel_map<std::size_t>(64, 8, [&](std::size_t i) {
    calls.fetch_add(1);
    return i;
  });
  EXPECT_EQ(calls.load(), 64);
  std::set<std::size_t> seen(results.begin(), results.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(ParallelMap, SequentialAndParallelAgree) {
  const auto seq = parallel_map<std::uint64_t>(
      32, 1, [](std::size_t i) { return derive_run_seed(7, i); });
  const auto par = parallel_map<std::uint64_t>(
      32, 8, [](std::size_t i) { return derive_run_seed(7, i); });
  EXPECT_EQ(seq, par);
}

TEST(ParallelMap, RethrowsLowestIndexException) {
  try {
    parallel_map<int>(16, 4, [](std::size_t i) -> int {
      if (i == 3 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom 3");
  }
}

TEST(ParallelMap, HandlesEmptyAndOversubscribed) {
  EXPECT_TRUE((parallel_map<int>(0, 8, [](std::size_t) { return 1; }))
                  .empty());
  // More workers than items must still produce every result once.
  const auto r = parallel_map<int>(3, 64, [](std::size_t i) {
    return static_cast<int>(i);
  });
  EXPECT_EQ(r, (std::vector<int>{0, 1, 2}));
}

TEST(SeedDerivation, StableAndDistinct) {
  // The per-run key is a pure function of (campaign seed, index)...
  EXPECT_EQ(derive_run_seed(42, 0), derive_run_seed(42, 0));
  // ...distinct across indices and campaign seeds.
  std::set<std::uint64_t> keys;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 64; ++i) keys.insert(derive_run_seed(s, i));
  }
  EXPECT_EQ(keys.size(), 4u * 64u);
}

TEST(SeedDerivation, MatchesFnv1aReference) {
  // FNV-1a of eight zero bytes folded over the offset basis.
  EXPECT_EQ(fnv1a64(0), 0xa8c7f832281a39c5ULL);
}

TEST(SuiteCampaign, ParallelSuiteMatchesSequential) {
  const auto seq = run_bug_suite(NicType::kE810, CampaignOptions{1, 1});
  const auto par = run_bug_suite(NicType::kE810, CampaignOptions{4, 1});
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].issue, par[i].issue);
    EXPECT_EQ(seq[i].affected, par[i].affected);
    EXPECT_EQ(seq[i].evidence, par[i].evidence);
  }
}

TEST(SuiteCampaign, MatrixIsNicMajorIssueMinor) {
  const std::vector<NicType> nics{NicType::kCx5, NicType::kE810};
  const auto matrix = run_bug_matrix(nics, CampaignOptions{8, 1});
  const auto& issues = all_known_issues();
  ASSERT_EQ(matrix.size(), nics.size() * issues.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_EQ(matrix[i].nic, nics[i / issues.size()]);
    EXPECT_EQ(matrix[i].issue, issues[i % issues.size()]);
  }
}

TEST(IssueSlugs, RoundTrip) {
  for (const KnownIssue issue : all_known_issues()) {
    const auto parsed = parse_known_issue(issue_slug(issue));
    ASSERT_TRUE(parsed.has_value()) << issue_slug(issue);
    EXPECT_EQ(*parsed, issue);
  }
  EXPECT_FALSE(parse_known_issue("no-such-issue").has_value());
}

TEST(FuzzCampaign, ShardOutcomeIndependentOfJobs) {
  const FuzzTarget target = make_lossy_network_target(NicType::kCx5);
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 1;
  const auto a = run_fuzz_campaign(target, options, 3, CampaignOptions{1, 5});
  const auto b = run_fuzz_campaign(target, options, 3, CampaignOptions{3, 5});
  ASSERT_EQ(a.shards.size(), 3u);
  ASSERT_EQ(b.shards.size(), 3u);
  EXPECT_EQ(a.anomaly_shard, b.anomaly_shard);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    ASSERT_EQ(a.shards[i].history.size(), b.shards[i].history.size());
    for (std::size_t k = 0; k < a.shards[i].history.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.shards[i].history[k].score,
                       b.shards[i].history[k].score);
    }
  }
}

TEST(FuzzTargets, LookupByName) {
  EXPECT_TRUE(make_fuzz_target("noisy-neighbor", NicType::kCx4Lx).has_value());
  EXPECT_TRUE(make_fuzz_target("lossy-network", NicType::kCx5).has_value());
  EXPECT_FALSE(make_fuzz_target("nope", NicType::kCx5).has_value());
}

// -- campaign YAML expansion ----------------------------------------------

constexpr const char* kCampaignYaml = R"(campaign:
  name: unit
  seed: 7
  runs:
    - kind: experiment
      name: sweep
      repeat: 2
      sweep:
        message-size: [2048, 4096]
        num-connections: [1, 2]
      config:
        traffic:
          rdma-verb: write
          num-msgs-per-qp: 2
    - kind: fuzz
      target: lossy-network
      nic: cx5
      shards: 3
      pool-size: 2
      max-iterations: 1
    - kind: suite
      nics: [e810]
      issues: [cnp-rate-limiting]
)";

TEST(CampaignConfig, ExpandsRunsDeterministically) {
  const Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  EXPECT_EQ(campaign.name, "unit");
  EXPECT_EQ(campaign.seed, 7u);
  // 2 sizes x 2 connection counts x 2 repeats + 3 shards + 1 probe.
  ASSERT_EQ(campaign.runs.size(), 8u + 3u + 1u);
  EXPECT_EQ(campaign.runs[0].name, "sweep/message-size=2048/num-connections=1/rep0");
  EXPECT_EQ(campaign.runs[0].config.traffic.message_size, 2048u);
  EXPECT_EQ(campaign.runs[0].config.traffic.num_connections, 1);
  EXPECT_EQ(campaign.runs[7].name, "sweep/message-size=4096/num-connections=2/rep1");
  EXPECT_EQ(campaign.runs[7].config.traffic.message_size, 4096u);
  EXPECT_EQ(campaign.runs[7].config.traffic.num_connections, 2);
  EXPECT_EQ(campaign.runs[8].kind, CampaignRunKind::kFuzz);
  EXPECT_EQ(campaign.runs[8].name, "fuzz/lossy-network/cx5/shard0");
  EXPECT_EQ(campaign.runs[11].kind, CampaignRunKind::kSuite);
  EXPECT_EQ(campaign.runs[11].issue, KnownIssue::kCnpRateLimiting);
}

TEST(CampaignConfig, RejectsBadDocuments) {
  EXPECT_THROW(load_campaign(parse_yaml("campaign:\n  name: x\n")),
               YamlError);
  EXPECT_THROW(
      load_campaign(parse_yaml(
          "runs:\n  - kind: teleport\n")),
      YamlError);
  EXPECT_THROW(
      load_campaign(parse_yaml(
          "runs:\n  - kind: fuzz\n    target: nope\n")),
      YamlError);
  EXPECT_THROW(
      load_campaign(parse_yaml(
          "runs:\n  - kind: experiment\n    name: x\n")),
      YamlError);
  EXPECT_THROW(
      load_campaign(parse_yaml("runs:\n"
                               "  - kind: experiment\n"
                               "    config:\n"
                               "      traffic:\n"
                               "        mtu: 1024\n"
                               "    sweep:\n"
                               "      no-such-knob: [1]\n")),
      YamlError);
}

TEST(CampaignConfig, AppliesTrafficOverrides) {
  TestConfig cfg;
  apply_traffic_override(cfg, "message-size", YamlNode::scalar("4096"));
  apply_traffic_override(cfg, "rdma-verb", YamlNode::scalar("read"));
  apply_traffic_override(cfg, "tx-depth", YamlNode::scalar("3"));
  EXPECT_EQ(cfg.traffic.message_size, 4096u);
  EXPECT_EQ(cfg.traffic.verb, RdmaVerb::kRead);
  EXPECT_EQ(cfg.traffic.tx_depth, 3);
  EXPECT_THROW(
      apply_traffic_override(cfg, "bogus", YamlNode::scalar("1")),
      YamlError);
}

TEST(CampaignSummary, CsvIsDeterministicAndWallClockFree) {
  Campaign campaign;
  campaign.name = "csv";
  for (int i = 0; i < 3; ++i) {
    CampaignRunSpec spec;
    spec.kind = CampaignRunKind::kExperiment;
    spec.name = "exp/rep" + std::to_string(i);
    spec.config.traffic.num_msgs_per_qp = 2;
    campaign.runs.push_back(spec);
  }
  const auto a = run_campaign(campaign, CampaignOptions{1, 99});
  const auto b = run_campaign(campaign, CampaignOptions{3, 99});
  EXPECT_EQ(campaign_summary_csv(a), campaign_summary_csv(b));
  // Wall-clock numbers exist on the report but never reach the CSV.
  EXPECT_EQ(campaign_summary_csv(a).find("wall"), std::string::npos);
  for (const auto& run : a.runs) {
    EXPECT_GT(run.metrics.sim_events, 0u);
    EXPECT_TRUE(run.result.has_value());
  }
}

}  // namespace
}  // namespace lumina
