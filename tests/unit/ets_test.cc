// Unit tests for the ETS egress scheduler: DRR fairness, work
// conservation, and the CX6 Dx non-work-conserving bug mode (§6.2.1).
#include <gtest/gtest.h>

#include "rnic/ets.h"

namespace lumina {
namespace {

constexpr std::size_t kPkt = 1024;

/// Serves the scheduler for `rounds` packets with the given active set and
/// returns how many packets each class got.
std::vector<int> serve(EtsScheduler& ets, const std::vector<bool>& active,
                       int rounds, Tick start = 0, Tick per_pkt = 100) {
  std::vector<int> served(active.size(), 0);
  const std::vector<std::size_t> sizes(active.size(), kPkt);
  Tick now = start;
  for (int i = 0; i < rounds; ++i) {
    const auto pick = ets.pick(now, active, sizes);
    if (!pick) {
      now = ets.next_eligible_time(now, active, sizes);
      if (now == std::numeric_limits<Tick>::max()) break;
      continue;
    }
    ++served[static_cast<std::size_t>(*pick)];
    ets.on_sent(*pick, kPkt, now);
    now += per_pkt;
  }
  return served;
}

TEST(Ets, UnconfiguredPicksNothing) {
  EtsScheduler ets;
  EXPECT_FALSE(ets.configured());
  EXPECT_FALSE(ets.pick(0, {true}, {kPkt}).has_value());
}

TEST(Ets, EqualWeightsShareEqually) {
  EtsScheduler ets;
  ets.configure({50, 50}, 100.0, /*work_conserving=*/true);
  const auto served = serve(ets, {true, true}, 1000);
  EXPECT_NEAR(served[0], 500, 20);
  EXPECT_NEAR(served[1], 500, 20);
}

TEST(Ets, WeightsControlShares) {
  EtsScheduler ets;
  ets.configure({75, 25}, 100.0, true);
  const auto served = serve(ets, {true, true}, 1000);
  EXPECT_NEAR(served[0], 750, 30);
  EXPECT_NEAR(served[1], 250, 30);
}

TEST(Ets, WorkConservingGivesIdleBandwidthAway) {
  EtsScheduler ets;
  ets.configure({50, 50}, 100.0, true);
  // Class 1 has nothing to send: class 0 takes everything.
  const auto served = serve(ets, {true, false}, 1000);
  EXPECT_EQ(served[0], 1000);
  EXPECT_EQ(served[1], 0);
}

TEST(Ets, NonWorkConservingCapsAtGuaranteedRate) {
  // The CX6 Dx bug: with the other class idle, the active class is still
  // limited to ~weight% of the link.
  EtsScheduler ets;
  ets.configure({50, 50}, 100.0, /*work_conserving=*/false);
  // Link 100 Gbps, 1024 B packets: full rate is one packet every ~82 ns.
  // Serve with per-packet time 82 ns: an uncapped class would take all
  // 1000 slots; a 50%-capped class only ~half.
  const auto served = serve(ets, {true, false}, 1000, 0, 82);
  EXPECT_LT(served[0], 650);
  EXPECT_GT(served[0], 350);
}

TEST(Ets, NonWorkConservingBothActiveStillSplit) {
  EtsScheduler ets;
  ets.configure({50, 50}, 100.0, false);
  const auto served = serve(ets, {true, true}, 1000, 0, 82);
  EXPECT_NEAR(served[0], served[1], 60);
}

TEST(Ets, SingleClassIsNeverCapped) {
  // §6.2.1: the bug only manifests with multiple ETS queues configured.
  EtsScheduler ets;
  ets.configure({100}, 100.0, false);
  const auto served = serve(ets, {true}, 1000, 0, 82);
  EXPECT_EQ(served[0], 1000);
}

TEST(Ets, NextEligibleTimeBoundsTokenWait) {
  EtsScheduler ets;
  ets.configure({50, 50}, 100.0, false);
  const std::vector<bool> active = {true, false};
  const std::vector<std::size_t> sizes = {kPkt, kPkt};
  // Exhaust class 0 tokens.
  Tick now = 0;
  while (ets.pick(now, active, sizes)) {
    ets.on_sent(0, kPkt, now);
  }
  const Tick next = ets.next_eligible_time(now, active, sizes);
  EXPECT_GT(next, now);
  EXPECT_LT(next, now + 100 * kMicrosecond);
  // At that time the class is eligible again.
  EXPECT_TRUE(ets.pick(next + 1, active, sizes).has_value());
}

TEST(Ets, WorkConservingNeverReportsTokenStarvation) {
  EtsScheduler ets;
  ets.configure({10, 90}, 100.0, true);
  EXPECT_EQ(ets.next_eligible_time(0, {true, true}, {kPkt, kPkt}),
            std::numeric_limits<Tick>::max());
}

class EtsWeightSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EtsWeightSweep, ServedRatioTracksWeightRatio) {
  const auto [w0, w1] = GetParam();
  EtsScheduler ets;
  ets.configure({w0, w1}, 100.0, true);
  const auto served = serve(ets, {true, true}, 2000);
  const double expected =
      static_cast<double>(w0) / static_cast<double>(w0 + w1);
  const double actual =
      static_cast<double>(served[0]) / (served[0] + served[1]);
  EXPECT_NEAR(actual, expected, 0.05) << "weights " << w0 << "/" << w1;
}

INSTANTIATE_TEST_SUITE_P(Ratios, EtsWeightSweep,
                         ::testing::Values(std::pair{50, 50},
                                           std::pair{60, 40},
                                           std::pair{75, 25},
                                           std::pair{90, 10},
                                           std::pair{30, 70}));

TEST(Ets, ThreeClasses) {
  EtsScheduler ets;
  ets.configure({20, 30, 50}, 100.0, true);
  std::vector<int> served(3, 0);
  const std::vector<bool> active = {true, true, true};
  const std::vector<std::size_t> sizes(3, kPkt);
  Tick now = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto pick = ets.pick(now, active, sizes);
    ASSERT_TRUE(pick.has_value());
    ++served[static_cast<std::size_t>(*pick)];
    ets.on_sent(*pick, kPkt, now);
    now += 100;
  }
  EXPECT_NEAR(served[0], 600, 60);
  EXPECT_NEAR(served[1], 900, 60);
  EXPECT_NEAR(served[2], 1500, 60);
}

}  // namespace
}  // namespace lumina
