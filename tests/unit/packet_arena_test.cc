// Property tests for the packet buffer arena (packet/packet_arena.h).
//
// The arena is a pure allocation optimization: packet bytes must be
// identical with and without one installed, across randomized
// alloc/serialize/free cycles that force heavy buffer reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "packet/packet_arena.h"
#include "packet/roce_packet.h"

namespace lumina {
namespace {

RocePacketSpec random_spec(std::mt19937_64& rng) {
  RocePacketSpec spec;
  for (auto& o : spec.src_mac.octets) o = static_cast<std::uint8_t>(rng());
  for (auto& o : spec.dst_mac.octets) o = static_cast<std::uint8_t>(rng());
  spec.src_ip.value = static_cast<std::uint32_t>(rng());
  spec.dst_ip.value = static_cast<std::uint32_t>(rng());
  spec.ttl = static_cast<std::uint8_t>(rng() % 255 + 1);
  spec.dscp = static_cast<std::uint8_t>(rng() % 64);
  spec.src_udp_port = static_cast<std::uint16_t>(rng());
  spec.dest_qpn = static_cast<std::uint32_t>(rng()) & kPsnMask;
  spec.psn = static_cast<std::uint32_t>(rng()) & kPsnMask;
  spec.ack_req = rng() % 2 == 0;
  spec.mig_req = rng() % 2 == 0;
  switch (rng() % 4) {
    case 0:
      spec.opcode = IbOpcode::kSendOnly;
      break;
    case 1:
      spec.opcode = IbOpcode::kWriteOnly;
      spec.reth = Reth{rng(), static_cast<std::uint32_t>(rng()),
                       static_cast<std::uint32_t>(rng() % 4096)};
      break;
    case 2:
      spec.opcode = IbOpcode::kAcknowledge;
      spec.aeth = Aeth{static_cast<std::uint8_t>(rng()),
                       static_cast<std::uint32_t>(rng()) & kPsnMask};
      break;
    default:
      spec.opcode = IbOpcode::kCnp;
      break;
  }
  spec.payload_len = static_cast<std::uint32_t>(rng() % 1500);
  return spec;
}

/// Serialization must not depend on whether (or which) recycled capacity
/// backs the packet: same spec → same bytes, arena or not.
TEST(PacketArena, BuildIsByteIdenticalWithAndWithoutArena) {
  std::mt19937_64 spec_rng(42);
  std::vector<RocePacketSpec> specs;
  for (int i = 0; i < 200; ++i) specs.push_back(random_spec(spec_rng));

  std::vector<Packet> bare;
  for (const auto& spec : specs) bare.push_back(build_roce_packet(spec));

  PacketArena arena;
  PacketArena::Scope scope(&arena);
  std::mt19937_64 churn_rng(7);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Packet pkt = build_roce_packet(specs[i]);
    EXPECT_EQ(pkt.bytes, bare[i].bytes) << "spec " << i;
    // Randomly recycle so later builds draw dirty buffers of odd sizes.
    if (churn_rng() % 2 == 0) PacketArena::reclaim(std::move(pkt));
  }
  EXPECT_GT(arena.reused(), 0u);
}

/// Round-trip invariant under heavy recycling: parse(build(spec)) recovers
/// the spec fields regardless of buffer provenance.
TEST(PacketArena, RandomizedAllocFreeCyclesRoundTrip) {
  PacketArena arena;
  PacketArena::Scope scope(&arena);
  std::mt19937_64 rng(1234);

  std::vector<Packet> held;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    const RocePacketSpec spec = random_spec(rng);
    Packet pkt = build_roce_packet(spec);

    const auto view = parse_roce(pkt);
    ASSERT_TRUE(view.has_value()) << "cycle " << cycle;
    EXPECT_EQ(view->bth.opcode, spec.opcode);
    EXPECT_EQ(view->bth.psn, spec.psn);
    EXPECT_EQ(view->bth.dest_qpn, spec.dest_qpn);
    EXPECT_EQ(view->src_ip.value, spec.src_ip.value);
    EXPECT_EQ(view->dst_ip.value, spec.dst_ip.value);
    EXPECT_TRUE(verify_icrc(pkt)) << "cycle " << cycle;

    // Random lifetime mix: free now, hold for later, or release a batch.
    switch (rng() % 4) {
      case 0:
        PacketArena::reclaim(std::move(pkt));
        break;
      case 1:
        held.push_back(std::move(pkt));
        break;
      default:
        held.push_back(std::move(pkt));
        if (held.size() > 16) {
          while (!held.empty()) {
            PacketArena::reclaim(std::move(held.back()));
            held.pop_back();
          }
        }
        break;
    }
  }
  EXPECT_GT(arena.reused(), 100u);
  EXPECT_EQ(arena.reused() + arena.fresh(), 2000u);
}

TEST(PacketArena, AcquireWithoutScopeIsPlainAllocation) {
  ASSERT_EQ(PacketArena::current(), nullptr);
  std::vector<std::uint8_t> buf = PacketArena::acquire_current();
  EXPECT_TRUE(buf.empty());
  Packet pkt;
  pkt.bytes = {1, 2, 3};
  PacketArena::reclaim(std::move(pkt));  // no arena: must not crash
}

TEST(PacketArena, ScopesNestAndRestore) {
  PacketArena outer;
  PacketArena inner;
  ASSERT_EQ(PacketArena::current(), nullptr);
  {
    PacketArena::Scope a(&outer);
    EXPECT_EQ(PacketArena::current(), &outer);
    {
      PacketArena::Scope b(&inner);
      EXPECT_EQ(PacketArena::current(), &inner);
    }
    EXPECT_EQ(PacketArena::current(), &outer);
  }
  EXPECT_EQ(PacketArena::current(), nullptr);
}

TEST(PacketArena, RecycleCapsPoolAndDropsJumboBuffers) {
  PacketArena arena;
  // Jumbo buffer: dropped, not pooled.
  std::vector<std::uint8_t> jumbo(PacketArena::kMaxRetainedCapacity + 1);
  arena.recycle(std::move(jumbo));
  EXPECT_EQ(arena.pooled(), 0u);
  // Empty (e.g. moved-from) buffers are skipped too.
  arena.recycle(std::vector<std::uint8_t>{});
  EXPECT_EQ(arena.pooled(), 0u);

  for (std::size_t i = 0; i < PacketArena::kMaxPooled + 10; ++i) {
    arena.recycle(std::vector<std::uint8_t>(64));
  }
  EXPECT_EQ(arena.pooled(), PacketArena::kMaxPooled);
}

/// Recycled buffers come back cleared: a dirty prior life must never leak
/// into a new packet's bytes.
TEST(PacketArena, ReusedBuffersAreCleared) {
  PacketArena arena;
  std::vector<std::uint8_t> dirty(512, 0xAB);
  arena.recycle(std::move(dirty));
  std::vector<std::uint8_t> buf = arena.acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 512u);
}

}  // namespace
}  // namespace lumina
