// Unit tests for the genetic fuzzer (§4, Algorithm 1).
#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "fuzz/targets.h"

namespace lumina {
namespace {

/// A cheap synthetic target so fuzzer mechanics can be tested without
/// running full simulations for every assertion: score = message size,
/// anomaly when the mutated message size crosses a threshold.
FuzzTarget synthetic_target() {
  FuzzTarget target;
  target.make_initial = [](Rng& rng) {
    TestConfig cfg;
    cfg.traffic.verb = RdmaVerb::kWrite;
    cfg.traffic.num_msgs_per_qp = 1;
    cfg.traffic.message_size = 1024 + rng.next_below(4) * 1024;
    return cfg;
  };
  target.mutate = [](TestConfig& cfg, Rng& rng) {
    cfg.traffic.message_size += rng.next_below(3) * 1024;
  };
  target.score = [](const TestConfig& cfg, const TestResult&) {
    return static_cast<double>(cfg.traffic.message_size);
  };
  target.is_anomaly = [](const TestConfig& cfg, const TestResult&) {
    return cfg.traffic.message_size >= 8 * 1024;
  };
  return target;
}

TEST(Fuzzer, ClimbsTowardHigherScores) {
  GeneticFuzzer::Options options;
  options.pool_size = 4;
  options.max_iterations = 120;
  options.seed = 7;
  GeneticFuzzer fuzzer(synthetic_target(), options);
  const FuzzOutcome outcome = fuzzer.run();
  // The hill is trivially climbable: the anomaly must be reached.
  ASSERT_TRUE(outcome.anomaly.has_value());
  EXPECT_GE(outcome.anomaly->config.traffic.message_size, 8u * 1024u);
  EXPECT_LE(outcome.iterations,
            options.pool_size + options.max_iterations);
}

TEST(Fuzzer, StopsAtIterationBudgetWithoutAnomaly) {
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return false;  // unreachable
  };
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 5;
  GeneticFuzzer fuzzer(target, options);
  const FuzzOutcome outcome = fuzzer.run();
  EXPECT_FALSE(outcome.anomaly.has_value());
  EXPECT_EQ(outcome.iterations, 7);
  EXPECT_EQ(outcome.history.size(), 7u);
}

TEST(Fuzzer, AnomalyInInitialPoolShortCircuits) {
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return true;  // first config already anomalous
  };
  GeneticFuzzer fuzzer(target, {});
  const FuzzOutcome outcome = fuzzer.run();
  ASSERT_TRUE(outcome.anomaly.has_value());
  EXPECT_EQ(outcome.iterations, 1);
}

TEST(Fuzzer, DeterministicForSameSeed) {
  GeneticFuzzer::Options options;
  options.pool_size = 3;
  options.max_iterations = 10;
  options.seed = 99;
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return false;
  };
  GeneticFuzzer a(target, options);
  GeneticFuzzer b(target, options);
  const FuzzOutcome oa = a.run();
  const FuzzOutcome ob = b.run();
  ASSERT_EQ(oa.history.size(), ob.history.size());
  for (std::size_t i = 0; i < oa.history.size(); ++i) {
    EXPECT_EQ(oa.history[i].config.traffic.message_size,
              ob.history[i].config.traffic.message_size);
  }
}

TEST(Fuzzer, NoisyNeighborTargetProducesValidConfigs) {
  Rng rng(5);
  const FuzzTarget target = make_noisy_neighbor_target(NicType::kCx4Lx);
  for (int i = 0; i < 20; ++i) {
    TestConfig cfg = target.make_initial(rng);
    EXPECT_EQ(cfg.traffic.verb, RdmaVerb::kRead);
    EXPECT_GE(cfg.traffic.num_connections, 8);
    EXPECT_LE(cfg.traffic.num_connections, 40);
    EXPECT_LE(static_cast<int>(cfg.traffic.data_pkt_events.size()),
              cfg.traffic.num_connections);
    for (int m = 0; m < 5; ++m) {
      target.mutate(cfg, rng);
      EXPECT_GE(cfg.traffic.num_connections, 4);
      EXPECT_LE(cfg.traffic.num_connections, 64);
      EXPECT_LE(static_cast<int>(cfg.traffic.data_pkt_events.size()),
                cfg.traffic.num_connections);
      for (const auto& ev : cfg.traffic.data_pkt_events) {
        EXPECT_GE(ev.qpn, 1);
        EXPECT_LE(ev.qpn, cfg.traffic.num_connections);
      }
    }
  }
}

TEST(Fuzzer, LossyTargetScoresCounterBugsHigh) {
  // The lossy-network target must score an E810 run (stuck cnpSent after
  // drops/marks...) higher than a healthy CX5 run of the same shape.
  const FuzzTarget target = make_lossy_network_target(NicType::kCx4Lx);
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx4Lx;
  cfg.responder().nic_type = NicType::kCx4Lx;
  cfg.traffic.verb = RdmaVerb::kRead;
  cfg.traffic.message_size = 20 * 1024;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});
  Orchestrator bad(cfg);
  const double bad_score = target.score(cfg, bad.run());
  EXPECT_TRUE(target.is_anomaly(cfg, bad.result()));  // implied_nak stuck

  TestConfig good_cfg = cfg;
  good_cfg.requester().nic_type = NicType::kCx5;
  good_cfg.responder().nic_type = NicType::kCx5;
  Orchestrator good(good_cfg);
  const double good_score = target.score(good_cfg, good.run());
  EXPECT_FALSE(target.is_anomaly(good_cfg, good.result()));
  EXPECT_GT(bad_score, good_score);
}

TEST(CrcDifferential, CleanAcrossSeeds) {
  // The fast CRC paths must agree with the retained references on random
  // buffers, splits, and alignments, for several independent seeds.
  for (const std::uint64_t seed : {0x1CECAFEu, 0xBADF00Du, 0x5EEDu}) {
    const CrcDifferentialOutcome out = run_crc_differential(seed, 300);
    EXPECT_EQ(out.iterations, 300);
    EXPECT_EQ(out.mismatches, 0) << out.first_mismatch;
  }
}

TEST(CrcDifferential, DeterministicForSameSeed) {
  const CrcDifferentialOutcome a = run_crc_differential(42, 50);
  const CrcDifferentialOutcome b = run_crc_differential(42, 50);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(CrcDifferential, TargetRegisteredAndRunsClean) {
  ASSERT_TRUE(make_fuzz_target("crc-differential", NicType::kCx5).has_value());
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 3;
  options.seed = 11;
  GeneticFuzzer fuzzer(make_crc_differential_target(NicType::kCx5), options);
  const FuzzOutcome outcome = fuzzer.run();
  // A healthy implementation never diverges from the references, so the
  // hunt must exhaust its budget without an anomaly.
  EXPECT_FALSE(outcome.anomaly.has_value());
}

}  // namespace
}  // namespace lumina
