// Unit tests for the genetic fuzzer (§4, Algorithm 1), its corpus
// checkpointing, and the report-driven fitness terms.
#include <gtest/gtest.h>

#include "config/yaml_lite.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/scorers.h"
#include "fuzz/targets.h"

namespace lumina {
namespace {

/// A cheap synthetic target so fuzzer mechanics can be tested without
/// running full simulations for every assertion: score = message size,
/// anomaly when the mutated message size crosses a threshold.
FuzzTarget synthetic_target() {
  FuzzTarget target;
  target.make_initial = [](Rng& rng) {
    TestConfig cfg;
    cfg.traffic.verb = RdmaVerb::kWrite;
    cfg.traffic.num_msgs_per_qp = 1;
    cfg.traffic.message_size = 1024 + rng.next_below(4) * 1024;
    return cfg;
  };
  target.mutate = [](TestConfig& cfg, Rng& rng) {
    cfg.traffic.message_size += rng.next_below(3) * 1024;
  };
  target.score = [](const TestConfig& cfg, const TestResult&) {
    return static_cast<double>(cfg.traffic.message_size);
  };
  target.is_anomaly = [](const TestConfig& cfg, const TestResult&) {
    return cfg.traffic.message_size >= 8 * 1024;
  };
  return target;
}

TEST(Fuzzer, ClimbsTowardHigherScores) {
  GeneticFuzzer::Options options;
  options.pool_size = 4;
  options.max_iterations = 120;
  options.seed = 7;
  GeneticFuzzer fuzzer(synthetic_target(), options);
  const FuzzOutcome outcome = fuzzer.run();
  // The hill is trivially climbable: the anomaly must be reached.
  ASSERT_TRUE(outcome.anomaly.has_value());
  EXPECT_GE(outcome.anomaly->config.traffic.message_size, 8u * 1024u);
  EXPECT_LE(outcome.iterations,
            options.pool_size + options.max_iterations);
}

TEST(Fuzzer, StopsAtIterationBudgetWithoutAnomaly) {
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return false;  // unreachable
  };
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 5;
  GeneticFuzzer fuzzer(target, options);
  const FuzzOutcome outcome = fuzzer.run();
  EXPECT_FALSE(outcome.anomaly.has_value());
  EXPECT_EQ(outcome.iterations, 7);
  EXPECT_EQ(outcome.history.size(), 7u);
}

TEST(Fuzzer, AnomalyInInitialPoolShortCircuits) {
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return true;  // first config already anomalous
  };
  GeneticFuzzer fuzzer(target, {});
  const FuzzOutcome outcome = fuzzer.run();
  ASSERT_TRUE(outcome.anomaly.has_value());
  EXPECT_EQ(outcome.iterations, 1);
}

TEST(Fuzzer, DeterministicForSameSeed) {
  GeneticFuzzer::Options options;
  options.pool_size = 3;
  options.max_iterations = 10;
  options.seed = 99;
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return false;
  };
  GeneticFuzzer a(target, options);
  GeneticFuzzer b(target, options);
  const FuzzOutcome oa = a.run();
  const FuzzOutcome ob = b.run();
  ASSERT_EQ(oa.history.size(), ob.history.size());
  for (std::size_t i = 0; i < oa.history.size(); ++i) {
    EXPECT_EQ(oa.history[i].config.traffic.message_size,
              ob.history[i].config.traffic.message_size);
  }
}

TEST(Fuzzer, NoisyNeighborTargetProducesValidConfigs) {
  Rng rng(5);
  const FuzzTarget target = make_noisy_neighbor_target(NicType::kCx4Lx);
  for (int i = 0; i < 20; ++i) {
    TestConfig cfg = target.make_initial(rng);
    EXPECT_EQ(cfg.traffic.verb, RdmaVerb::kRead);
    EXPECT_GE(cfg.traffic.num_connections, 8);
    EXPECT_LE(cfg.traffic.num_connections, 40);
    EXPECT_LE(static_cast<int>(cfg.traffic.data_pkt_events.size()),
              cfg.traffic.num_connections);
    for (int m = 0; m < 5; ++m) {
      target.mutate(cfg, rng);
      EXPECT_GE(cfg.traffic.num_connections, 4);
      EXPECT_LE(cfg.traffic.num_connections, 64);
      EXPECT_LE(static_cast<int>(cfg.traffic.data_pkt_events.size()),
                cfg.traffic.num_connections);
      for (const auto& ev : cfg.traffic.data_pkt_events) {
        EXPECT_GE(ev.qpn, 1);
        EXPECT_LE(ev.qpn, cfg.traffic.num_connections);
      }
    }
  }
}

TEST(Fuzzer, LossyTargetScoresCounterBugsHigh) {
  // The lossy-network target must score an E810 run (stuck cnpSent after
  // drops/marks...) higher than a healthy CX5 run of the same shape.
  const FuzzTarget target = make_lossy_network_target(NicType::kCx4Lx);
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx4Lx;
  cfg.responder().nic_type = NicType::kCx4Lx;
  cfg.traffic.verb = RdmaVerb::kRead;
  cfg.traffic.message_size = 20 * 1024;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});
  Orchestrator bad(cfg);
  const double bad_score = target.score(cfg, bad.run());
  EXPECT_TRUE(target.is_anomaly(cfg, bad.result()));  // implied_nak stuck

  TestConfig good_cfg = cfg;
  good_cfg.requester().nic_type = NicType::kCx5;
  good_cfg.responder().nic_type = NicType::kCx5;
  Orchestrator good(good_cfg);
  const double good_score = target.score(good_cfg, good.run());
  EXPECT_FALSE(target.is_anomaly(good_cfg, good.result()));
  EXPECT_GT(bad_score, good_score);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume and the corpus on-disk form (docs/fuzzing.md)
// ---------------------------------------------------------------------------

FuzzTarget no_anomaly_target() {
  FuzzTarget target = synthetic_target();
  target.is_anomaly = [](const TestConfig&, const TestResult&) {
    return false;
  };
  return target;
}

GeneticFuzzer::Options exhaustive_options() {
  GeneticFuzzer::Options options;
  options.pool_size = 3;
  options.max_iterations = 9;
  options.seed = 99;
  return options;
}

TEST(FuzzerCheckpoint, StepBudgetCoversOnlyTheCurrentCall) {
  GeneticFuzzer fuzzer(no_anomaly_target(), exhaustive_options());
  const FuzzOutcome first = fuzzer.run(4);
  EXPECT_EQ(first.iterations, 4);
  EXPECT_EQ(fuzzer.state().steps_done, 4);
  EXPECT_FALSE(fuzzer.state().done);
  // The second call reports only its own steps; lifetime totals live in
  // state(). 3 + 9 = 12 total, so 8 remain.
  const FuzzOutcome rest = fuzzer.run(0);
  EXPECT_EQ(rest.iterations, 8);
  EXPECT_EQ(fuzzer.state().steps_done, 12);
  EXPECT_TRUE(fuzzer.state().done);
}

TEST(FuzzerCheckpoint, ResumedHuntMatchesUninterrupted) {
  const FuzzTarget target = no_anomaly_target();
  const GeneticFuzzer::Options options = exhaustive_options();
  GeneticFuzzer uninterrupted(target, options);
  uninterrupted.run();
  const std::string expected = serialize_corpus(uninterrupted.checkpoint());

  // Interrupt after 4 steps, round the checkpoint through its on-disk
  // text form, and finish the hunt in a brand-new fuzzer.
  GeneticFuzzer first_half(target, options);
  first_half.run(4);
  const std::string mid = serialize_corpus(first_half.checkpoint());
  GeneticFuzzer second_half(target, options);
  second_half.restore(parse_corpus(mid));
  second_half.run();
  EXPECT_EQ(serialize_corpus(second_half.checkpoint()), expected);
}

TEST(Corpus, SerializationIsAFixpoint) {
  GeneticFuzzer fuzzer(no_anomaly_target(), exhaustive_options());
  fuzzer.run(5);
  const std::string bytes = serialize_corpus(fuzzer.checkpoint());
  const FuzzCorpusState parsed = parse_corpus(bytes);
  EXPECT_EQ(parsed.steps_done, 5);
  EXPECT_EQ(parsed.pool.size(), fuzzer.state().pool.size());
  EXPECT_EQ(serialize_corpus(parsed), bytes);
  EXPECT_EQ(corpus_digest(bytes), corpus_digest(serialize_corpus(parsed)));
}

TEST(Corpus, AnomalyBlockRoundTrips) {
  GeneticFuzzer::Options options;
  options.pool_size = 4;
  options.max_iterations = 120;
  options.seed = 7;
  GeneticFuzzer fuzzer(synthetic_target(), options);
  fuzzer.run();
  ASSERT_TRUE(fuzzer.state().anomaly.has_value());
  const std::string bytes = serialize_corpus(fuzzer.checkpoint());
  const FuzzCorpusState parsed = parse_corpus(bytes);
  EXPECT_TRUE(parsed.done);
  ASSERT_TRUE(parsed.anomaly.has_value());
  EXPECT_EQ(parsed.anomaly->config.traffic.message_size,
            fuzzer.state().anomaly->config.traffic.message_size);
  EXPECT_EQ(serialize_corpus(parsed), bytes);
}

TEST(Corpus, MalformedTextThrows) {
  EXPECT_THROW(parse_corpus("not a corpus"), YamlError);
  EXPECT_THROW(parse_corpus("# lumina fuzz corpus v1\nsteps-done: x\n"),
               YamlError);
}

TEST(Corpus, MissingFileIsNullopt) {
  EXPECT_FALSE(
      load_corpus_file("/nonexistent/dir/corpus.yaml").has_value());
}

// ---------------------------------------------------------------------------
// The scenario target (multi-host incast + full fault vocabulary)
// ---------------------------------------------------------------------------

TEST(Fuzzer, ScenarioTargetConfigsRoundTripCanonically) {
  // Everything the target generates must survive the corpus round trip
  // byte-exactly: serialize -> parse -> serialize is a fixpoint.
  Rng rng(3);
  const FuzzTarget target = make_scenario_target(NicType::kCx5, 4);
  for (int i = 0; i < 15; ++i) {
    TestConfig cfg = target.make_initial(rng);
    EXPECT_EQ(cfg.hosts.size(), 4u);
    for (int m = 0; m < 4; ++m) {
      target.mutate(cfg, rng);
      EXPECT_GE(cfg.traffic.data_pkt_events.size(), 1u);
      EXPECT_LE(cfg.traffic.data_pkt_events.size(), 4u);
      for (const auto& ev : cfg.traffic.data_pkt_events) {
        EXPECT_GE(ev.qpn, 1);
        EXPECT_LE(ev.qpn, cfg.traffic.num_connections);
      }
      const std::string text = serialize_test_config(cfg);
      const TestConfig reparsed = load_test_config(parse_yaml(text));
      EXPECT_EQ(serialize_test_config(reparsed), text);
      EXPECT_EQ(reparsed.traffic.data_pkt_events,
                cfg.traffic.data_pkt_events);
    }
  }
}

TEST(Fuzzer, ScenarioTargetRegistered) {
  EXPECT_TRUE(
      make_fuzz_target("scenario", NicType::kCx5, 3).has_value());
  EXPECT_FALSE(make_fuzz_target("no-such-target", NicType::kCx5).has_value());
}

// ---------------------------------------------------------------------------
// Report-driven fitness terms
// ---------------------------------------------------------------------------

TEST(Scorers, UnknownMetricThrowsAtCompositionTime) {
  EXPECT_THROW(make_fitness({FitnessTerm{"bogus", 1.0}}), YamlError);
  EXPECT_THROW(make_fitness({}), YamlError);
  TestConfig cfg;
  TestResult result;
  EXPECT_THROW(eval_fitness_metric("bogus", cfg, result), YamlError);
}

TEST(Scorers, CountersSumsAndBuiltinsCompose) {
  TestConfig cfg;
  cfg.traffic.num_msgs_per_qp = 2;
  TestResult result;
  result.finished = false;
  result.telemetry.counters["injector.dropped_by_event"] = 3;
  result.telemetry.counters["rnic.requester.retransmitted_packets"] = 2;
  result.telemetry.counters["rnic.responder.retransmitted_packets"] = 5;
  EXPECT_EQ(eval_fitness_metric("injector.dropped_by_event", cfg, result),
            3.0);
  EXPECT_EQ(
      eval_fitness_metric("sum:.retransmitted_packets", cfg, result), 7.0);
  EXPECT_EQ(eval_fitness_metric("unfinished", cfg, result), 1.0);
  // Absent counter paths read 0: the dormant-fault contract.
  EXPECT_EQ(eval_fitness_metric("injector.pause_storms", cfg, result), 0.0);
  const auto fitness = make_fitness(
      {FitnessTerm{"injector.dropped_by_event", 2.0},
       FitnessTerm{"unfinished", 10.0}});
  EXPECT_EQ(fitness(cfg, result), 16.0);
}

TEST(Scorers, LoadFitnessParsesMapsAndScalars) {
  const YamlNode root = parse_yaml(
      "fitness:\n"
      "  - {metric: mct-mean, weight: 2.5}\n"
      "  - injector.dropped_by_event\n");
  const auto terms = load_fitness(root["fitness"]);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].metric, "mct-mean");
  EXPECT_EQ(terms[0].weight, 2.5);
  EXPECT_EQ(terms[1].metric, "injector.dropped_by_event");
  EXPECT_EQ(terms[1].weight, 1.0);
  EXPECT_THROW(load_fitness(parse_yaml("fitness:\n  - nonsense\n")["fitness"]),
               YamlError);
}

TEST(CrcDifferential, CleanAcrossSeeds) {
  // The fast CRC paths must agree with the retained references on random
  // buffers, splits, and alignments, for several independent seeds.
  for (const std::uint64_t seed : {0x1CECAFEu, 0xBADF00Du, 0x5EEDu}) {
    const CrcDifferentialOutcome out = run_crc_differential(seed, 300);
    EXPECT_EQ(out.iterations, 300);
    EXPECT_EQ(out.mismatches, 0) << out.first_mismatch;
  }
}

TEST(CrcDifferential, DeterministicForSameSeed) {
  const CrcDifferentialOutcome a = run_crc_differential(42, 50);
  const CrcDifferentialOutcome b = run_crc_differential(42, 50);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(CrcDifferential, TargetRegisteredAndRunsClean) {
  ASSERT_TRUE(make_fuzz_target("crc-differential", NicType::kCx5).has_value());
  ASSERT_TRUE(
      make_fuzz_target("pipeline-differential", NicType::kCx5).has_value());
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 3;
  options.seed = 11;
  GeneticFuzzer fuzzer(make_crc_differential_target(NicType::kCx5), options);
  const FuzzOutcome outcome = fuzzer.run();
  // A healthy implementation never diverges from the references, so the
  // hunt must exhaust its budget without an anomaly.
  EXPECT_FALSE(outcome.anomaly.has_value());
}

TEST(PipelineDifferential, HealthyChainsReportNoMismatches) {
  const PipelineDifferentialOutcome out = run_pipeline_differential(7, 20);
  EXPECT_EQ(out.iterations, 20);
  EXPECT_EQ(out.mismatches, 0) << out.first_mismatch;
}

TEST(PipelineDifferential, DeterministicForSameSeed) {
  const PipelineDifferentialOutcome a = run_pipeline_differential(42, 10);
  const PipelineDifferentialOutcome b = run_pipeline_differential(42, 10);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(PipelineDifferential, TargetRunsClean) {
  GeneticFuzzer::Options options;
  options.pool_size = 2;
  options.max_iterations = 3;
  options.seed = 11;
  GeneticFuzzer fuzzer(make_pipeline_differential_target(NicType::kCx5),
                       options);
  const FuzzOutcome outcome = fuzzer.run();
  // The stage-major order must match the per-packet oracle on every batch,
  // so the hunt must exhaust its budget without an anomaly.
  EXPECT_FALSE(outcome.anomaly.has_value());
}

}  // namespace
}  // namespace lumina
