// Unit tests for the hierarchical timing wheel (sim/timing_wheel.h):
// arm/cancel/cascade boundaries, same-tick id ordering, tombstone
// reclamation timing, the overflow horizon, O(1)-ish structure behavior,
// and determinism under seeded churn. The wheel-vs-calendar equivalence
// at the Simulator level lives in timer_differential_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_id_table.h"
#include "sim/timing_wheel.h"

namespace lumina {
namespace {

constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();
constexpr std::uint64_t kMaxId = std::numeric_limits<std::uint64_t>::max();

/// Drives the wheel the way the Simulator does: allocate ids densely,
/// fire by killing the id then popping the callback.
class WheelHarness {
 public:
  std::uint64_t arm(Tick deadline) {
    const std::uint64_t id = next_id_++;
    ids_.on_allocated(id);
    wheel_.arm(deadline, id, InlineCallback{[] {}});
    return id;
  }

  void cancel(std::uint64_t id) { ids_.kill(id); }

  /// Fires everything due up to `limit`, returning (when, id) in order.
  std::vector<std::pair<Tick, std::uint64_t>> drain(Tick limit = kMaxTick) {
    std::vector<std::pair<Tick, std::uint64_t>> fired;
    while (wheel_.peek_due(limit, kMaxId, ids_)) {
      fired.emplace_back(wheel_.due_when(), wheel_.due_id());
      ids_.kill(wheel_.due_id());
      wheel_.pop_due()();
    }
    return fired;
  }

  TimingWheel& wheel() { return wheel_; }

 private:
  TimingWheel wheel_;
  EventIdTable ids_;
  std::uint64_t next_id_ = 1;
};

TEST(TimingWheel, FiresInDeadlineThenIdOrder) {
  WheelHarness h;
  const auto a = h.arm(500);
  const auto b = h.arm(100);
  const auto c = h.arm(100);  // same tick as b, larger id
  const auto d = h.arm(3);

  const auto fired = h.drain();
  const std::vector<std::pair<Tick, std::uint64_t>> want = {
      {3, d}, {100, b}, {100, c}, {500, a}};
  EXPECT_EQ(fired, want);
  EXPECT_TRUE(h.wheel().empty());
  EXPECT_EQ(h.wheel().fired_total(), 4u);
}

TEST(TimingWheel, LimitIsExclusiveBoundary) {
  WheelHarness h;
  h.arm(100);
  const auto b = h.arm(50);
  EXPECT_EQ(h.drain(/*limit=*/99).size(), 1u);  // only the 50 fires
  EXPECT_EQ(h.wheel().fired_total(), 1u);
  EXPECT_EQ(h.wheel().stored(), 1u);
  EXPECT_EQ(h.drain().size(), 1u);  // the 100 fires once the limit lifts
  (void)b;
}

TEST(TimingWheel, SameTickTiesAcrossLevelsSortById) {
  WheelHarness h;
  // Same deadline armed from different distances: one lands in level 0
  // directly, others cascade down from coarser levels as drain() advances
  // the cursor in stages. All must still fire in id order at tick 70000.
  std::vector<std::uint64_t> ids;
  ids.push_back(h.arm(70'000));
  ids.push_back(h.arm(70'000));
  h.arm(60'000);  // forces an intermediate cascade stop
  ids.push_back(h.arm(70'000));

  auto fired = h.drain(/*limit=*/60'000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 60'000);

  fired = h.drain();
  ASSERT_EQ(fired.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fired[i].first, 70'000);
    EXPECT_EQ(fired[i].second, ids[i]);
  }
}

TEST(TimingWheel, CascadeBoundaryDeadlines) {
  // Deadlines hugging 64^k edges — the off-by-one hot spots of the
  // level_for / slot_of arithmetic.
  WheelHarness h;
  std::vector<Tick> deadlines;
  for (int k = 1; k <= 4; ++k) {
    const Tick edge = Tick{1} << (6 * k);
    for (Tick d : {edge - 1, edge, edge + 1}) deadlines.push_back(d);
  }
  deadlines.push_back(0);
  deadlines.push_back(1);
  std::vector<std::pair<Tick, std::uint64_t>> want;
  for (const Tick d : deadlines) want.emplace_back(d, h.arm(d));
  std::sort(want.begin(), want.end());

  EXPECT_EQ(h.drain(), want);
}

TEST(TimingWheel, CancelledTimerNeverFiresAndReclaimsAtItsTurn) {
  WheelHarness h;
  const auto a = h.arm(1'000);
  const auto b = h.arm(2'000);
  h.cancel(a);
  EXPECT_EQ(h.wheel().stored(), 2u);  // tombstone still occupies storage

  // Draining below the tombstone's deadline must not reclaim it...
  EXPECT_TRUE(h.drain(/*limit=*/999).empty());
  EXPECT_EQ(h.wheel().stored(), 2u);

  // ...but passing it does, without firing.
  const auto fired = h.drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, b);
  EXPECT_EQ(h.wheel().reclaimed_total(), 1u);
  EXPECT_TRUE(h.wheel().empty());
}

TEST(TimingWheel, RearmChurnRecyclesNodes) {
  // The RTO pattern: one armed timer per connection, constantly
  // cancel+re-armed. Node storage must plateau at the population size
  // plus the tombstones not yet passed, not grow with churn volume.
  WheelHarness h;
  Tick now = 0;
  std::uint64_t armed = h.arm(now + 10'000);
  for (int i = 1; i <= 5'000; ++i) {
    now += 1'000;
    EXPECT_TRUE(h.drain(/*limit=*/now).empty());  // reclaims passed stones
    h.cancel(armed);
    armed = h.arm(now + 10'000);
  }
  const auto fired = h.drain();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, armed);
  EXPECT_EQ(h.wheel().reclaimed_total(), 5'000u);
  // One live timer plus ~10 rounds of not-yet-passed tombstones in
  // flight at any moment: node storage plateaus at the churn window, not
  // the 5001 total arms.
  EXPECT_LT(h.wheel().node_capacity(), 64u);
}

TEST(TimingWheel, OverflowHorizonDeadlines) {
  WheelHarness h;
  const Tick horizon = Tick{1} << 48;
  const auto far = h.arm(horizon + 12'345);
  const auto near = h.arm(77);
  const auto mid = h.arm(horizon - 1);

  const auto fired = h.drain();
  const std::vector<std::pair<Tick, std::uint64_t>> want = {
      {77, near}, {horizon - 1, mid}, {horizon + 12'345, far}};
  EXPECT_EQ(fired, want);
}

TEST(TimingWheel, DeterministicUnderSeededChurn) {
  auto run = [] {
    WheelHarness h;
    std::mt19937_64 rng(0xc0ffee);
    std::vector<std::pair<Tick, std::uint64_t>> fired;
    std::vector<std::uint64_t> live;
    Tick now = 0;
    for (int round = 0; round < 2'000; ++round) {
      const int arms = static_cast<int>(rng() % 4);
      for (int i = 0; i < arms; ++i) {
        live.push_back(h.arm(now + static_cast<Tick>(rng() % 300'000)));
      }
      if (!live.empty() && rng() % 3 == 0) {
        const std::size_t victim = rng() % live.size();
        h.cancel(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      now += static_cast<Tick>(rng() % 5'000);
      for (const auto& f : h.drain(now)) fired.push_back(f);
    }
    for (const auto& f : h.drain()) fired.push_back(f);
    return fired;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Fire order is globally sorted by (when, id).
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LT(first[i - 1], first[i]);
  }
}

}  // namespace
}  // namespace lumina
