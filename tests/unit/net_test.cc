// Unit tests for the network substrate: ports, links, serialization and
// propagation timing, egress queueing and drops.
#include <gtest/gtest.h>

#include <deque>

#include "net/node.h"
#include "packet/roce_packet.h"

namespace lumina {
namespace {

Packet make_packet(std::uint32_t payload) {
  RocePacketSpec spec;
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.opcode = IbOpcode::kSendOnly;
  spec.payload_len = payload;
  return build_roce_packet(spec);
}

/// A node that records every arrival with its timestamp.
class SinkNode : public Node {
 public:
  explicit SinkNode(Simulator* sim) : sim_(sim), port_(sim, this, 0) {}
  void handle_packet(int, Packet pkt) override {
    arrivals.push_back({sim_->now(), pkt.size()});
  }
  std::string name() const override { return "sink"; }
  Port& port() { return port_; }

  struct Arrival {
    Tick when;
    std::size_t bytes;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
  Port port_;
};

class NetTest : public ::testing::Test {
 protected:
  Simulator sim;
  SinkNode a{&sim};
  SinkNode b{&sim};
};

TEST_F(NetTest, DeliversAfterSerializationPlusPropagation) {
  connect(a.port(), b.port(), LinkParams{100.0, 500});
  const Packet pkt = make_packet(1024);
  const Tick expected_ser =
      static_cast<Tick>(static_cast<double>(pkt.wire_size()) * 8.0 / 100.0);
  a.port().send(pkt);
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].when, expected_ser + 500);
}

TEST_F(NetTest, SlowerLinkTakesLonger) {
  SinkNode c{&sim}, d{&sim};
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  connect(c.port(), d.port(), LinkParams{40.0, 0});
  a.port().send(make_packet(1024));
  c.port().send(make_packet(1024));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  ASSERT_EQ(d.arrivals.size(), 1u);
  EXPECT_NEAR(static_cast<double>(d.arrivals[0].when),
              static_cast<double>(b.arrivals[0].when) * 2.5, 2.0);
}

TEST_F(NetTest, BackToBackPacketsSerializeSequentially) {
  connect(a.port(), b.port(), LinkParams{100.0, 100});
  const Packet pkt = make_packet(1024);
  const Tick ser =
      static_cast<Tick>(static_cast<double>(pkt.wire_size()) * 8.0 / 100.0);
  for (int i = 0; i < 5; ++i) a.port().send(pkt);
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.arrivals[static_cast<std::size_t>(i)].when,
              ser * (i + 1) + 100);
  }
}

TEST_F(NetTest, FullDuplexDirectionsDoNotInterfere) {
  connect(a.port(), b.port(), LinkParams{100.0, 50});
  a.port().send(make_packet(1024));
  b.port().send(make_packet(1024));
  sim.run();
  ASSERT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals[0].when, b.arrivals[0].when);
}

TEST_F(NetTest, EgressOverflowDropsTail) {
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  a.port().set_queue_byte_cap(3000);  // fits ~2 packets of ~1100 B
  for (int i = 0; i < 10; ++i) a.port().send(make_packet(1024));
  sim.run();
  EXPECT_LT(b.arrivals.size(), 10u);
  EXPECT_GE(b.arrivals.size(), 2u);
  EXPECT_EQ(a.port().counters().drops, 10u - b.arrivals.size());
  EXPECT_EQ(a.port().counters().tx_packets, b.arrivals.size());
}

TEST_F(NetTest, OverflowHighWaterMarkStopsAtTheCap) {
  // Flood far past the cap: the FIFO's high-water mark must reflect what
  // was actually queued — bounded by the byte cap, not by the offered load
  // — and every packet beyond it must land in `drops`.
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  const Packet pkt = make_packet(1024);
  a.port().set_queue_byte_cap(4 * pkt.size());
  for (int i = 0; i < 32; ++i) a.port().send(pkt);
  sim.run();
  const PortCounters& c = a.port().counters();
  EXPECT_GT(c.drops, 0u);
  EXPECT_EQ(c.drops + c.tx_packets, 32u);
  EXPECT_LE(c.max_queued_bytes, 4 * pkt.size());
  // The mark is a real high-water mark: at least one full burst fit.
  EXPECT_GE(c.max_queued_bytes, 3 * pkt.size());
  // Dropped packets never occupied the queue, so the mark is unchanged by
  // a second overflowing burst of the same shape.
  const std::size_t mark = c.max_queued_bytes;
  for (int i = 0; i < 32; ++i) a.port().send(pkt);
  sim.run();
  EXPECT_EQ(a.port().counters().max_queued_bytes, mark);
}

TEST_F(NetTest, HighWaterMarkTracksPeakWithoutOverflow) {
  // Below the cap the mark equals the largest backlog ever held: the full
  // burst minus the packet being serialized is queued at its peak.
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  const Packet pkt = make_packet(1024);
  for (int i = 0; i < 6; ++i) a.port().send(pkt);
  sim.run();
  const PortCounters& c = a.port().counters();
  EXPECT_EQ(c.drops, 0u);
  EXPECT_EQ(c.tx_packets, 6u);
  EXPECT_EQ(c.max_queued_bytes, 5 * pkt.size());
}

TEST_F(NetTest, CountersTrackTraffic) {
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  const Packet pkt = make_packet(512);
  a.port().send(pkt);
  a.port().send(pkt);
  sim.run();
  EXPECT_EQ(a.port().counters().tx_packets, 2u);
  EXPECT_EQ(a.port().counters().tx_bytes, 2 * pkt.size());
  EXPECT_EQ(b.port().counters().rx_packets, 2u);
  EXPECT_EQ(b.port().counters().rx_bytes, 2 * pkt.size());
  EXPECT_EQ(a.port().counters().drops, 0u);
}

TEST_F(NetTest, DrainedCallbackFiresWhenIdle) {
  connect(a.port(), b.port(), LinkParams{100.0, 0});
  int drained = 0;
  a.port().set_drained_callback([&] { ++drained; });
  a.port().send(make_packet(64));
  a.port().send(make_packet(64));
  sim.run();
  EXPECT_EQ(drained, 1);  // queue emptied once
  EXPECT_TRUE(a.port().idle());
}

TEST_F(NetTest, UnwiredPortBlackholes) {
  a.port().send(make_packet(64));  // no peer attached
  sim.run();
  EXPECT_TRUE(b.arrivals.empty());
}

class WireSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireSizeTest, SerializationDelayScalesWithSize) {
  Simulator sim;
  SinkNode x{&sim}, y{&sim};
  connect(x.port(), y.port(), LinkParams{100.0, 0});
  const Packet pkt = make_packet(GetParam());
  EXPECT_EQ(x.port().serialization_delay(pkt),
            static_cast<Tick>(static_cast<double>(pkt.size() + 24) * 8.0 /
                              100.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeTest,
                         ::testing::Values(0u, 64u, 256u, 1024u, 4096u));

}  // namespace
}  // namespace lumina
