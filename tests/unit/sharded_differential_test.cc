// Differential test battery: ShardedSimulator against the naive
// single-threaded specification kernel (sim/sharded_reference.h).
//
// The sharded kernel's contract (docs/simulator.md) is that results are a
// pure function of event content — never of shard count or thread
// placement. The oracle's API deliberately has no shard parameter, so one
// oracle run per script is compared against the real kernel at shards
// {1, 2, 4, 8}: identical per-domain firing order, identical returned
// handles, identical clocks, and identical counters (including the
// sharding-specific ones: windows, lookahead stalls, clamped sends, cross
// messages, cross cancels).
//
// Scripts are data, as in sim_differential_test.cc, so one workload drives
// both kernel types through the same template executor. Generated cancels
// only target slots whose handle cell was written by the same execution
// domain (or at top level): everything else would be a data race in the
// *harness*, not the kernel — exactly the discipline real components
// follow (a node cancels its own timers and its own in-flight sends).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "sim/sharded_reference.h"
#include "sim/sharded_sim.h"

namespace lumina {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// Workload script model
// ---------------------------------------------------------------------------

enum class OpKind {
  kScheduleOn,       // schedule_on(domain, tick) -> slot
  kScheduleAfterOn,  // schedule_after_on(domain, tick) -> slot
  kTimerOn,          // schedule_timer_on(domain, tick) -> slot
  kCancelSlot,       // cancel the handle recorded for slot `target`
  kCancelRaw,        // cancel handles never returned by schedule_*
  kStop,             // stop() — callback-only
  kRun,              // run() — top-level only
  kRunUntil,         // run_until(tick) — top-level only
};

struct Op {
  OpKind kind;
  Tick tick = 0;
  int slot = -1;    // slot defined by a schedule op
  int target = -1;  // slot referenced by kCancelSlot
  int domain = 0;   // schedule target domain
};

struct Script {
  int num_domains = 1;
  Tick lookahead = 250;
  std::vector<Op> top;
  std::vector<std::vector<Op>> body;    // indexed by slot
  std::vector<int> exec_domain;         // per slot: domain its body runs in
};

class ScriptGen {
 public:
  explicit ScriptGen(std::uint64_t seed) : rng_(seed) {}

  Script generate() {
    Script s;
    s.num_domains = 1 + static_cast<int>(rng_() % 8);
    const Tick lookaheads[] = {1, 5, 250};
    s.lookahead = lookaheads[rng_() % 3];
    const int top_ops = 8 + static_cast<int>(rng_() % 40);
    for (int i = 0; i < top_ops; ++i) {
      s.top.push_back(top_op(s));
    }
    s.top.push_back({OpKind::kRun});
    return s;
  }

 private:
  // Slots a cancel issued from `ctx` may reference without racing: the
  // handle cell must have been written by the same execution domain or by
  // the coordinator at top level (ctx == -1 may read anything).
  int cancel_candidate(const Script& s, int ctx) {
    std::vector<int> ok;
    for (std::size_t slot = 0; slot < writer_ctx_.size(); ++slot) {
      if (ctx == -1 || writer_ctx_[slot] == -1 || writer_ctx_[slot] == ctx) {
        ok.push_back(static_cast<int>(slot));
      }
    }
    if (ok.empty()) return -1;
    return ok[rng_() % ok.size()];
  }

  Op top_op(Script& s) {
    switch (rng_() % 10) {
      case 0:
        return {OpKind::kRunUntil, random_time()};
      case 1:
        return cancel_op(s, /*ctx=*/-1);
      case 2:
        return {OpKind::kRun};
      default:
        return schedule_op(s, /*ctx=*/-1, /*depth=*/0);
    }
  }

  Op schedule_op(Script& s, int ctx, int depth) {
    const int slot = static_cast<int>(s.body.size());
    const int target_domain = static_cast<int>(rng_() % s.num_domains);
    s.body.emplace_back();
    s.exec_domain.push_back(target_domain);
    writer_ctx_.push_back(ctx);
    if (depth < 3) {
      const int body_ops = static_cast<int>(rng_() % 4);
      for (int i = 0; i < body_ops; ++i) {
        // Materialize before indexing s.body: nested schedule_op grows it.
        Op op;
        switch (rng_() % 8) {
          case 0:
            op = cancel_op(s, target_domain);
            break;
          case 1:
            if (depth >= 1) {
              op = Op{OpKind::kStop};
              break;
            }
            [[fallthrough]];
          default:
            op = schedule_op(s, target_domain, depth + 1);
        }
        s.body[static_cast<std::size_t>(slot)].push_back(op);
      }
    }
    Op op;
    switch (rng_() % 4) {
      case 0:
        op.kind = OpKind::kScheduleOn;
        op.tick = random_time();
        break;
      case 1:
        op.kind = OpKind::kTimerOn;
        op.tick = random_time();
        break;
      default:
        op.kind = OpKind::kScheduleAfterOn;
        // Delays straddling the lookahead: below it (cross sends clamp),
        // at it, just above, plus the clustered spread links produce.
        switch (rng_() % 4) {
          case 0:
            op.tick = static_cast<Tick>(rng_() %
                                        static_cast<std::uint64_t>(
                                            2 * s.lookahead + 2));
            break;
          case 1:
            op.tick = -static_cast<Tick>(rng_() % 100);
            break;
          default:
            op.tick = static_cast<Tick>(rng_() % 5000);
        }
    }
    op.slot = slot;
    op.domain = target_domain;
    return op;
  }

  Op cancel_op(Script& s, int ctx) {
    const int target = cancel_candidate(s, ctx);
    if (target < 0 || rng_() % 8 == 0) {
      return {OpKind::kCancelRaw, 0, -1, -1};
    }
    Op op{OpKind::kCancelSlot};
    op.target = target;
    return op;
  }

  Tick random_time() {
    switch (rng_() % 4) {
      case 0:  // tie bait: tiny range, collides across domains constantly
        return static_cast<Tick>(rng_() % 8);
      case 1:  // sparse far future
        return static_cast<Tick>(rng_() % 3'000'000);
      default:  // clustered near-term
        return static_cast<Tick>(rng_() % 4096);
    }
  }

  std::mt19937_64 rng_;
  std::vector<int> writer_ctx_;  // per slot: ctx domain that writes its id
};

// ---------------------------------------------------------------------------
// Script executor (works for both kernel types)
// ---------------------------------------------------------------------------

struct Observation {
  // Per-domain firing logs: (slot, fire time) in each domain's own order.
  // Per-domain rather than global because a global log would itself be a
  // cross-thread observation — the determinism unit is the domain.
  std::vector<std::vector<std::pair<int, Tick>>> domain_firings;
  std::vector<std::uint64_t> ids;  // per slot; 0 = never scheduled
  Tick final_now = 0;
  std::uint64_t events_processed = 0;
  std::size_t pending_events = 0;
  std::uint64_t cancel_requests = 0;
  std::uint64_t windows = 0;
  std::uint64_t lookahead_stalls = 0;
  std::uint64_t clamped_sends = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t cross_cancels = 0;
};

template <typename Engine>
Observation execute(const Script& script, Engine& eng) {
  Observation obs;
  obs.domain_firings.resize(static_cast<std::size_t>(script.num_domains));
  obs.ids.assign(script.body.size(), 0);

  struct Ctx {
    Engine& eng;
    const Script& script;
    Observation& obs;

    void apply(const Op& op) {
      switch (op.kind) {
        case OpKind::kScheduleOn:
          obs.ids[static_cast<std::size_t>(op.slot)] = eng.schedule_on(
              static_cast<DomainId>(op.domain), op.tick, callback(op.slot));
          break;
        case OpKind::kScheduleAfterOn:
          obs.ids[static_cast<std::size_t>(op.slot)] = eng.schedule_after_on(
              static_cast<DomainId>(op.domain), op.tick, callback(op.slot));
          break;
        case OpKind::kTimerOn:
          obs.ids[static_cast<std::size_t>(op.slot)] = eng.schedule_timer_on(
              static_cast<DomainId>(op.domain), op.tick, callback(op.slot));
          break;
        case OpKind::kCancelSlot:
          eng.cancel(obs.ids[static_cast<std::size_t>(op.target)]);
          break;
        case OpKind::kCancelRaw:
          eng.cancel(0x7fff'ffff'ffffULL);
          eng.cancel(0);
          break;
        case OpKind::kStop:
          eng.stop();
          break;
        case OpKind::kRun:
          eng.run();
          break;
        case OpKind::kRunUntil:
          eng.run_until(op.tick);
          break;
      }
    }

    auto callback(int slot) {
      const int domain = script.exec_domain[static_cast<std::size_t>(slot)];
      return [this, slot, domain] {
        obs.domain_firings[static_cast<std::size_t>(domain)].emplace_back(
            slot, eng.now());
        for (const Op& op : script.body[static_cast<std::size_t>(slot)]) {
          apply(op);
        }
      };
    }
  };
  Ctx ctx{eng, script, obs};

  for (const Op& op : script.top) {
    ctx.apply(op);
  }

  obs.final_now = eng.now();
  obs.events_processed = eng.events_processed();
  obs.pending_events = eng.pending_events();
  obs.cancel_requests = eng.cancel_requests();
  obs.windows = eng.windows();
  obs.lookahead_stalls = eng.lookahead_stalls();
  obs.clamped_sends = eng.clamped_sends();
  obs.cross_messages = eng.cross_messages();
  obs.cross_cancels = eng.cross_cancels();
  return obs;
}

Observation run_oracle(const Script& script) {
  ShardedReferenceKernel::Options opt;
  opt.lookahead = script.lookahead;
  ShardedReferenceKernel ref(script.num_domains, opt);
  return execute(script, ref);
}

Observation run_sharded(const Script& script, int shards) {
  ShardedSimulator::Options opt;
  opt.shards = shards;
  opt.lookahead = script.lookahead;
  ShardedSimulator sim(script.num_domains, opt);
  return execute(script, sim);
}

void expect_obs_eq(const Observation& got, const Observation& want,
                   const std::string& label) {
  EXPECT_EQ(got.domain_firings, want.domain_firings) << label;
  EXPECT_EQ(got.ids, want.ids) << label;
  EXPECT_EQ(got.final_now, want.final_now) << label;
  EXPECT_EQ(got.events_processed, want.events_processed) << label;
  EXPECT_EQ(got.pending_events, want.pending_events) << label;
  EXPECT_EQ(got.cancel_requests, want.cancel_requests) << label;
  EXPECT_EQ(got.windows, want.windows) << label;
  EXPECT_EQ(got.lookahead_stalls, want.lookahead_stalls) << label;
  EXPECT_EQ(got.clamped_sends, want.clamped_sends) << label;
  EXPECT_EQ(got.cross_messages, want.cross_messages) << label;
  EXPECT_EQ(got.cross_cancels, want.cross_cancels) << label;
}

void check_all_shard_counts(const Script& script, const std::string& label) {
  const Observation want = run_oracle(script);
  for (const int shards : kShardCounts) {
    if (shards > script.num_domains) continue;
    const Observation got = run_sharded(script, shards);
    expect_obs_eq(got, want, label + " shards=" + std::to_string(shards));
    ASSERT_FALSE(::testing::Test::HasFailure()) << label;
  }
}

// ---------------------------------------------------------------------------
// The differential check
// ---------------------------------------------------------------------------

constexpr int kWorkloads = 1000;

TEST(ShardedDifferential, MatchesReferenceAcrossShardCounts) {
  std::uint64_t total_firings = 0;
  std::uint64_t total_cross = 0;
  std::uint64_t total_clamped = 0;
  std::uint64_t total_cancels = 0;
  for (int seed = 1; seed <= kWorkloads; ++seed) {
    ScriptGen gen(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL);
    const Script script = gen.generate();
    const Observation want = run_oracle(script);
    for (const int shards : kShardCounts) {
      if (shards > script.num_domains) continue;
      const Observation got = run_sharded(script, shards);
      expect_obs_eq(got, want,
                    "seed " + std::to_string(seed) + " shards=" +
                        std::to_string(shards) + " domains=" +
                        std::to_string(script.num_domains));
      ASSERT_FALSE(::testing::Test::HasFailure()) << "seed " << seed;
    }
    for (const auto& per_domain : want.domain_firings) {
      total_firings += per_domain.size();
    }
    total_cross += want.cross_messages;
    total_clamped += want.clamped_sends;
    total_cancels += want.cancel_requests;
  }
  // Guard against the generator degenerating into trivial or cross-free
  // scripts: the battery must actually exercise the barrier machinery.
  EXPECT_GT(total_firings, 10u * kWorkloads);
  EXPECT_GT(total_cross, 2u * kWorkloads);
  EXPECT_GT(total_clamped, kWorkloads / 2);
  EXPECT_GT(total_cancels, kWorkloads);
}

// Same-tick pileups across domains: every origin sends cross messages to
// every other domain at colliding ticks, forcing the barrier merge to
// tie-break on (origin domain, origin sequence) constantly.
TEST(ShardedDifferential, CrossShardSameTickTies) {
  for (int seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 2654435761u);
    Script script;
    script.num_domains = 8;
    script.lookahead = 1 + static_cast<Tick>(rng() % 3);
    auto add_slot = [&](int domain) {
      const int slot = static_cast<int>(script.body.size());
      script.body.emplace_back();
      script.exec_domain.push_back(domain);
      return slot;
    };
    // Seed each domain with a ticker whose body fans out to two random
    // other domains at a near-colliding absolute time (usually below the
    // lookahead floor — the clamp then lands whole batches on one tick).
    for (int d = 0; d < script.num_domains; ++d) {
      const int seed_slot = add_slot(d);
      for (int k = 0; k < 2; ++k) {
        const int dst = static_cast<int>(rng() % 8);
        const int cross_slot = add_slot(dst);
        Op op{OpKind::kScheduleOn, static_cast<Tick>(rng() % 4), cross_slot,
              -1, dst};
        script.body[static_cast<std::size_t>(seed_slot)].push_back(op);
      }
      script.top.push_back(
          {OpKind::kScheduleOn, static_cast<Tick>(rng() % 2), seed_slot, -1,
           d});
    }
    script.top.push_back({OpKind::kRun});
    check_all_shard_counts(script, "ties seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
  }
}

// Cancel of in-flight cross-shard events: the origin schedules a cross
// message and cancels it from a later callback in the same domain —
// sometimes in the very window that produced the message (it dies at the
// barrier, before ever firing), sometimes after delivery (a remote kill).
TEST(ShardedDifferential, CancelInFlightCrossShardEvents) {
  for (int seed = 1; seed <= 40; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 7919);
    Script script;
    script.num_domains = 4 + static_cast<int>(rng() % 5);
    script.lookahead = 50;
    auto add_slot = [&](int domain) {
      const int slot = static_cast<int>(script.body.size());
      script.body.emplace_back();
      script.exec_domain.push_back(domain);
      return slot;
    };
    for (int i = 0; i < 30; ++i) {
      const int origin = static_cast<int>(
          rng() % static_cast<std::uint64_t>(script.num_domains));
      const int dst = static_cast<int>(
          rng() % static_cast<std::uint64_t>(script.num_domains));
      const int origin_slot = add_slot(origin);
      const int victim_slot = add_slot(dst);
      const int canceller_slot = add_slot(origin);
      auto& origin_body = script.body[static_cast<std::size_t>(origin_slot)];
      // Cross send with a delay around the lookahead, then a same-domain
      // canceller at a delay that races the victim's delivery window.
      origin_body.push_back({OpKind::kScheduleAfterOn,
                             static_cast<Tick>(rng() % 120), victim_slot, -1,
                             dst});
      origin_body.push_back({OpKind::kScheduleAfterOn,
                             static_cast<Tick>(rng() % 200), canceller_slot,
                             -1, origin});
      script.body[static_cast<std::size_t>(canceller_slot)].push_back(
          {OpKind::kCancelSlot, 0, -1, victim_slot});
      script.top.push_back({OpKind::kScheduleOn,
                            static_cast<Tick>(rng() % 64), origin_slot, -1,
                            origin});
    }
    script.top.push_back({OpKind::kRun});
    check_all_shard_counts(script, "cancel seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
  }
}

// Timer storms: mass schedule_timer_on pileups on one deadline per domain
// plus heavy same-domain cancel churn — the wheel-backed lane store under
// window execution.
TEST(ShardedDifferential, TimerStorms) {
  for (int seed = 1; seed <= 30; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 6364136223846793005ULL);
    Script script;
    script.num_domains = 8;
    script.lookahead = 100;
    auto add_slot = [&](int domain) {
      const int slot = static_cast<int>(script.body.size());
      script.body.emplace_back();
      script.exec_domain.push_back(domain);
      return slot;
    };
    for (int d = 0; d < script.num_domains; ++d) {
      const int pump = add_slot(d);
      // add_slot reallocates script.body: assemble the pump's ops locally
      // and install them only once its slots stop growing.
      std::vector<Op> pump_body;
      const Tick storm_deadline = 500 + static_cast<Tick>(rng() % 3);
      std::vector<int> timers;
      for (int k = 0; k < 12; ++k) {
        const int t = add_slot(d);
        timers.push_back(t);
        pump_body.push_back({OpKind::kTimerOn, storm_deadline, t, -1, d});
      }
      // Cancel roughly half the storm before it lands.
      for (int k = 0; k < 6; ++k) {
        const int canceller = add_slot(d);
        pump_body.push_back({OpKind::kScheduleAfterOn,
                             static_cast<Tick>(rng() % 400), canceller, -1,
                             d});
        script.body[static_cast<std::size_t>(canceller)].push_back(
            {OpKind::kCancelSlot, 0, -1,
             timers[rng() % timers.size()]});
      }
      script.body[static_cast<std::size_t>(pump)] = std::move(pump_body);
      script.top.push_back({OpKind::kScheduleOn, static_cast<Tick>(rng() % 8),
                            pump, -1, d});
    }
    script.top.push_back({OpKind::kRun});
    check_all_shard_counts(script, "storm seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
  }
}

// Sends at exactly the lookahead never clamp; anything below it does, and
// both land deterministically. Also pins the clamp counter semantics.
TEST(ShardedDifferential, CrossSendsAtAndBelowLookahead) {
  Script script;
  script.num_domains = 4;
  script.lookahead = 100;
  auto add_slot = [&](int domain) {
    const int slot = static_cast<int>(script.body.size());
    script.body.emplace_back();
    script.exec_domain.push_back(domain);
    return slot;
  };
  const int origin_slot = add_slot(0);
  // add_slot reallocates script.body: assemble locally, install afterwards.
  std::vector<Op> body;
  const Tick delays[] = {0, 1, 99, 100, 101, 250};
  for (const Tick delay : delays) {
    const int dst_slot = add_slot(1);
    body.push_back({OpKind::kScheduleAfterOn, delay, dst_slot, -1, 1});
  }
  script.body[static_cast<std::size_t>(origin_slot)] = std::move(body);
  script.top.push_back({OpKind::kScheduleOn, 10, origin_slot, -1, 0});
  script.top.push_back({OpKind::kRun});

  const Observation want = run_oracle(script);
  // Three of the six delays sit below the lookahead and must clamp.
  EXPECT_EQ(want.clamped_sends, 3u);
  EXPECT_EQ(want.cross_messages, 6u);
  check_all_shard_counts(script, "lookahead-edge");
}

}  // namespace
}  // namespace lumina
