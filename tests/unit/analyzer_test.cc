// Unit tests for the §4 test-suite analyzers, driven by hand-crafted
// synthetic traces — including deliberately NON-compliant traces that
// prove the Go-Back-N FSM checker can actually fail.
#include <gtest/gtest.h>

#include "analyzers/cnp_analyzer.h"
#include "analyzers/counter_analyzer.h"
#include "analyzers/gbn_fsm.h"
#include "analyzers/retrans_perf.h"

namespace lumina {
namespace {

const Ipv4Address kReqIp = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kRespIp = Ipv4Address::from_octets(10, 0, 0, 2);
constexpr std::uint32_t kReqQpn = 0x11;
constexpr std::uint32_t kRespQpn = 0x22;

/// Builds synthetic traces packet by packet.
class TraceBuilder {
 public:
  /// Requester -> responder data packet (Write stream by default).
  TraceBuilder& data(std::uint32_t psn, Tick t,
                     EventType event = EventType::kNone,
                     IbOpcode opcode = IbOpcode::kWriteMiddle) {
    RocePacketSpec spec = forward_spec();
    spec.opcode = opcode;
    spec.psn = psn;
    spec.payload_len = 1024;
    if (opcode == IbOpcode::kWriteFirst || opcode == IbOpcode::kWriteOnly) {
      spec.reth = Reth{0, 0, 1024};
    }
    push(spec, t, event);
    return *this;
  }

  /// Requester -> responder data packet held by a `delay` event: mirrored
  /// at `t` (its slot in mirror order) but released toward the receiver at
  /// `released_t`.
  TraceBuilder& delayed_data(std::uint32_t psn, Tick t, Tick released_t) {
    data(psn, t, EventType::kDelay);
    trace_.packets.back().released_at = released_t;
    return *this;
  }

  /// Responder -> requester read-response data packet.
  TraceBuilder& read_resp(std::uint32_t psn, Tick t,
                          EventType event = EventType::kNone) {
    RocePacketSpec spec = reverse_spec();
    spec.opcode = IbOpcode::kReadRespMiddle;
    spec.psn = psn;
    spec.payload_len = 1024;
    push(spec, t, event);
    return *this;
  }

  TraceBuilder& nak(std::uint32_t psn, Tick t) {
    RocePacketSpec spec = reverse_spec();
    spec.opcode = IbOpcode::kAcknowledge;
    spec.psn = psn;
    spec.aeth = Aeth::nak_sequence_error(0);
    push(spec, t, EventType::kNone);
    return *this;
  }

  TraceBuilder& ack(std::uint32_t psn, Tick t) {
    RocePacketSpec spec = reverse_spec();
    spec.opcode = IbOpcode::kAcknowledge;
    spec.psn = psn;
    spec.aeth = Aeth::ack(0);
    push(spec, t, EventType::kNone);
    return *this;
  }

  /// Requester -> responder read request (the read-traffic "NAK").
  TraceBuilder& read_request(std::uint32_t psn, Tick t, std::uint32_t len) {
    RocePacketSpec spec = forward_spec();
    spec.opcode = IbOpcode::kReadRequest;
    spec.psn = psn;
    spec.reth = Reth{0, 0, len};
    push(spec, t, EventType::kNone);
    return *this;
  }

  TraceBuilder& cnp(Ipv4Address from, Ipv4Address to, std::uint32_t dst_qpn,
                    Tick t) {
    RocePacketSpec spec;
    spec.src_ip = from;
    spec.dst_ip = to;
    spec.dest_qpn = dst_qpn;
    spec.opcode = IbOpcode::kCnp;
    push(spec, t, EventType::kNone);
    return *this;
  }

  const PacketTrace& trace() const { return trace_; }

 private:
  static RocePacketSpec forward_spec() {
    RocePacketSpec spec;
    spec.src_ip = kReqIp;
    spec.dst_ip = kRespIp;
    spec.dest_qpn = kRespQpn;
    return spec;
  }
  static RocePacketSpec reverse_spec() {
    RocePacketSpec spec;
    spec.src_ip = kRespIp;
    spec.dst_ip = kReqIp;
    spec.dest_qpn = kReqQpn;
    return spec;
  }

  void push(const RocePacketSpec& spec, Tick t, EventType event) {
    TracePacket tp;
    tp.pkt = build_roce_packet(spec);
    tp.view = *parse_roce(tp.pkt);
    tp.meta.mirror_seq = seq_++;
    tp.meta.ingress_timestamp = t;
    tp.meta.event = event;
    tp.orig_len = tp.pkt.size();
    trace_.packets.push_back(std::move(tp));
  }

  PacketTrace trace_;
  std::uint64_t seq_ = 0;
};

// ---------------------------------------------------------------------------
// Go-Back-N FSM checker
// ---------------------------------------------------------------------------

TEST(GbnFsm, CompliantRecoveryPasses) {
  TraceBuilder b;
  // 1 2 [3 dropped] 4 5 -> NAK(3) -> 3 4 5 -> ACK(5)
  b.data(1, 100).data(2, 200).data(3, 300, EventType::kDrop);
  b.data(4, 400).data(5, 500);
  b.nak(3, 600);
  b.data(3, 700).data(4, 800).data(5, 900);
  b.ack(5, 1000);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  EXPECT_TRUE(report.compliant())
      << report.violations[0].rule << ": "
      << report.violations[0].description;
  EXPECT_EQ(report.flows_checked, 1u);
  EXPECT_EQ(report.episodes_seen, 1u);
}

TEST(GbnFsm, CleanTraceHasNoEpisodes) {
  TraceBuilder b;
  for (std::uint32_t i = 1; i <= 10; ++i) b.data(i, i * 100);
  b.ack(10, 1100);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  EXPECT_TRUE(report.compliant());
  EXPECT_EQ(report.episodes_seen, 0u);
}

TEST(GbnFsm, G1NakWithWrongPsnFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(4, 400);  // expected PSN is 2, NAK says 4: spec violation
  b.data(2, 500).data(3, 600);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G1");
}

TEST(GbnFsm, OneNakPerRoundOnRepeatedLossIsCompliant) {
  // Listing 2's double-drop: the same PSN is lost in rounds 1 and 2; the
  // receiver NAKs once per round — compliant.
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(2, 400);
  b.data(2, 500, EventType::kDrop).data(3, 600);  // round 2, lost again
  b.nak(2, 700);                                  // second round's NAK
  b.data(2, 800).data(3, 900);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  EXPECT_TRUE(report.compliant())
      << (report.violations.empty() ? ""
                                    : report.violations[0].description);
}

TEST(GbnFsm, DelayedPacketReplaysAtReleaseTime) {
  // A `delay` event holds PSN 2 at the switch: its mirror slot precedes
  // PSNs 3/4, but the receiver sees it only at release time (900) — after
  // NAKing the gap and after the retransmission round healed it. Replayed
  // in receiver order the trace is fully compliant; replayed in mirror
  // order the NAK would look causeless (the pre-fix false G2).
  TraceBuilder b;
  b.data(1, 100);
  b.delayed_data(2, 200, /*released_t=*/900);
  b.data(3, 300).data(4, 400);
  b.nak(2, 500);
  b.data(2, 600).data(3, 700).data(4, 800);  // go-back-N round 2
  b.ack(4, 1000);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  EXPECT_TRUE(report.compliant())
      << (report.violations.empty() ? ""
                                    : report.violations[0].description);
  EXPECT_EQ(report.episodes_seen, 1u);
}

TEST(GbnFsm, StaleNakAfterDelayedOriginalHealsIsTolerated) {
  // The race the fault_vocabulary scenario exposes: the delayed original is
  // released (450) while the receiver's NAK is still in its slow NACK-
  // generation pipeline (§6, Fig. 8), so in receiver order the gap heals
  // BEFORE the NAK lands (500). That one stale NAK — carrying exactly the
  // healed gap's PSN — is legitimate, not a causeless G2.
  TraceBuilder b;
  b.data(1, 100);
  b.delayed_data(2, 200, /*released_t=*/450);
  b.data(3, 300).data(4, 400);  // the episode the receiver NAKs
  b.nak(2, 500);                // lands after the delayed original healed it
  b.data(2, 600).data(3, 700).data(4, 800);  // go-back-N round the NAK triggers
  b.ack(4, 1000);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  EXPECT_TRUE(report.compliant())
      << (report.violations.empty() ? ""
                                    : report.violations[0].description);
  EXPECT_EQ(report.episodes_seen, 1u);
}

TEST(GbnFsm, StaleNakGraceIsSingleUse) {
  // A second NAK for the same healed gap is still a violation: the grace
  // covers exactly the one in-flight NAK the episode earned.
  TraceBuilder b;
  b.data(1, 100);
  b.delayed_data(2, 200, /*released_t=*/450);
  b.data(3, 300).data(4, 400);
  b.nak(2, 500).nak(2, 550);  // second stale NAK has no episode to claim
  b.data(2, 600).data(3, 700).data(4, 800);
  b.ack(4, 1000);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G2");
}

TEST(GbnFsm, DelayWithoutReleaseStampStillMisreads) {
  // Same wire history but with no release stamp joined onto the trace: the
  // FSM walks mirror order, sees 1..4 contiguous, and flags the receiver's
  // legitimate NAK — the exact failure mode the release-time replay fixes
  // (and why the orchestrator stamps released_at).
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDelay).data(3, 300).data(4, 400);
  b.nak(2, 500);
  b.data(2, 600).data(3, 700).data(4, 800);
  b.ack(4, 1000);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G2");
}

TEST(GbnFsm, G2DuplicateNakFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(2, 400).nak(2, 450);  // NAK storm
  b.data(2, 500).data(3, 600);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G2");
}

TEST(GbnFsm, G2SpuriousNakFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200);
  b.nak(3, 300);  // nothing is out of order
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G2");
}

TEST(GbnFsm, G3UnresolvedEpisodeFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(2, 400);
  // Trace ends without the retransmission ever arriving.
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G3");
}

TEST(GbnFsm, G4RetransmissionSkippingExpectedFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300).data(4, 400);
  b.nak(2, 500);
  b.data(3, 600);  // round rewinds to 3, skipping the NAKed PSN 2
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  bool g4 = false;
  for (const auto& v : report.violations) g4 = g4 || v.rule == "G4";
  EXPECT_TRUE(g4);
}

TEST(GbnFsm, G5AckBeyondDeliveredFlagged) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200);
  b.ack(7, 300);  // acknowledges data never delivered
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kWrite);
  ASSERT_FALSE(report.compliant());
  EXPECT_EQ(report.violations[0].rule, "G5");
}

TEST(GbnFsm, ReadRecoveryViaReRequestPasses) {
  TraceBuilder b;
  // Read responses 1 2 [3 dropped] 4 -> re-request(3) -> 3 4.
  b.read_resp(1, 100).read_resp(2, 200).read_resp(3, 300, EventType::kDrop);
  b.read_resp(4, 400);
  b.read_request(3, 500, 2048);
  b.read_resp(3, 600).read_resp(4, 700);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kRead);
  EXPECT_TRUE(report.compliant())
      << (report.violations.empty() ? ""
                                    : report.violations[0].description);
}

TEST(GbnFsm, PipelinedFutureReadRequestIsNotANak) {
  TraceBuilder b;
  b.read_resp(1, 100).read_resp(2, 200, EventType::kDrop).read_resp(3, 300);
  b.read_request(10, 350, 4096);  // next message, not a recovery request
  b.read_request(2, 500, 2048);   // the actual implied NAK
  b.read_resp(2, 600).read_resp(3, 700);
  const auto report = check_gbn_compliance(b.trace(), RdmaVerb::kRead);
  EXPECT_TRUE(report.compliant());
}

// ---------------------------------------------------------------------------
// Retransmission performance analyzer
// ---------------------------------------------------------------------------

TEST(RetransPerf, SplitsNackGenerationAndReaction) {
  TraceBuilder b;
  b.data(1, 1000).data(2, 2000, EventType::kDrop).data(3, 3000);
  b.nak(2, 5000);
  b.data(2, 9000).data(3, 10000);
  const auto episodes = analyze_retransmissions(b.trace(), RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 1u);
  const auto& ep = episodes[0];
  EXPECT_EQ(ep.psn, 2u);
  EXPECT_EQ(ep.iter, 1u);
  EXPECT_FALSE(ep.timeout_recovery);
  ASSERT_TRUE(ep.nack_generation_latency().has_value());
  EXPECT_EQ(*ep.nack_generation_latency(), 2000);  // 5000 - 3000
  ASSERT_TRUE(ep.nack_reaction_latency().has_value());
  EXPECT_EQ(*ep.nack_reaction_latency(), 4000);  // 9000 - 5000
  EXPECT_EQ(*ep.total_latency(), 7000);
}

TEST(RetransPerf, TailDropIsTimeoutRecovery) {
  TraceBuilder b;
  b.data(1, 1000).data(2, 2000).data(3, 3000, EventType::kDrop);
  b.data(3, 5'000'000);  // RTO retransmission, no NAK in between
  const auto episodes = analyze_retransmissions(b.trace(), RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_TRUE(episodes[0].timeout_recovery);
  EXPECT_FALSE(episodes[0].nack_time.has_value());
  EXPECT_EQ(*episodes[0].total_latency(), 5'000'000 - 3000);
}

TEST(RetransPerf, TracksIterOfEachDrop) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(2, 400);
  b.data(2, 500, EventType::kDrop).data(3, 600);  // retransmission dropped
  b.nak(2, 700);
  b.data(2, 800).data(3, 900);
  const auto episodes = analyze_retransmissions(b.trace(), RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].iter, 1u);
  EXPECT_EQ(episodes[1].iter, 2u);
  EXPECT_TRUE(episodes[1].retransmit_time.has_value());
}

TEST(RetransPerf, ReadUsesReRequestAsNack) {
  TraceBuilder b;
  b.read_resp(1, 1000).read_resp(2, 2000, EventType::kDrop)
      .read_resp(3, 3000);
  b.read_request(2, 90'000, 2048);  // implied NAK after 87 us
  b.read_resp(2, 95'000).read_resp(3, 96'000);
  const auto episodes = analyze_retransmissions(b.trace(), RdmaVerb::kRead);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(*episodes[0].nack_generation_latency(), 87'000);
  EXPECT_EQ(*episodes[0].nack_reaction_latency(), 5'000);
}

// ---------------------------------------------------------------------------
// CNP analyzer
// ---------------------------------------------------------------------------

TEST(CnpAnalyzer, CollectsCnpsAndMarkedPackets) {
  TraceBuilder b;
  b.data(1, 100, EventType::kEcn);
  b.data(2, 200, EventType::kEcn);
  b.cnp(kRespIp, kReqIp, kReqQpn, 300);
  const auto report = analyze_cnps(b.trace());
  EXPECT_EQ(report.ecn_marked_data_packets, 2u);
  ASSERT_EQ(report.cnps.size(), 1u);
  EXPECT_EQ(report.cnps[0].np_ip, kRespIp);
  EXPECT_EQ(report.cnps[0].rp_ip, kReqIp);
}

TEST(CnpAnalyzer, FiltersByNpIp) {
  TraceBuilder b;
  b.cnp(kRespIp, kReqIp, kReqQpn, 100);
  b.cnp(kReqIp, kRespIp, kRespQpn, 200);
  EXPECT_EQ(analyze_cnps(b.trace(), {kRespIp}).cnps.size(), 1u);
  EXPECT_EQ(analyze_cnps(b.trace()).cnps.size(), 2u);
}

TEST(CnpAnalyzer, GroupedMinimumIntervals) {
  const Ipv4Address rp2 = Ipv4Address::from_octets(10, 0, 0, 9);
  TraceBuilder b;
  // Two RP IPs, interleaved 2 us apart; per-IP spacing 4 us.
  b.cnp(kRespIp, kReqIp, 1, 0);
  b.cnp(kRespIp, rp2, 2, 2000);
  b.cnp(kRespIp, kReqIp, 1, 4000);
  b.cnp(kRespIp, rp2, 2, 6000);
  const auto report = analyze_cnps(b.trace());
  EXPECT_EQ(*report.min_interval_global(), 2000);
  EXPECT_EQ(*report.min_interval_per_dest_ip(), 4000);
  EXPECT_EQ(*report.min_interval_per_qp(), 4000);
}

TEST(CnpAnalyzer, InfersEachMode) {
  constexpr Tick kInterval = 4000;
  {  // per-port: global gaps respect the interval
    TraceBuilder b;
    for (int i = 0; i < 8; ++i) {
      b.cnp(kRespIp, kReqIp, static_cast<std::uint32_t>(i % 3),
            i * kInterval);
    }
    EXPECT_EQ(infer_cnp_mode(analyze_cnps(b.trace()), kInterval),
              CnpRateLimitMode::kPerPort);
  }
  {  // per-dest-ip: same-IP gaps respect it; global gaps do not
    const Ipv4Address rp2 = Ipv4Address::from_octets(10, 0, 0, 9);
    TraceBuilder b;
    for (int i = 0; i < 8; ++i) {
      b.cnp(kRespIp, i % 2 == 0 ? kReqIp : rp2, 1,
            i * kInterval / 2);
    }
    EXPECT_EQ(infer_cnp_mode(analyze_cnps(b.trace()), kInterval),
              CnpRateLimitMode::kPerDestIp);
  }
  {  // per-qp: only same-QP gaps respect it
    TraceBuilder b;
    for (int i = 0; i < 12; ++i) {
      b.cnp(kRespIp, kReqIp, static_cast<std::uint32_t>(i % 4),
            i * kInterval / 4);
    }
    EXPECT_EQ(infer_cnp_mode(analyze_cnps(b.trace()), kInterval),
              CnpRateLimitMode::kPerQp);
  }
}

// ---------------------------------------------------------------------------
// Counter analyzer
// ---------------------------------------------------------------------------

TEST(CounterAnalyzer, FlagsStuckCnpCounter) {
  TraceBuilder b;
  b.data(1, 100, EventType::kEcn);
  b.cnp(kRespIp, kReqIp, kReqQpn, 300);
  RnicCounters req_counters, resp_counters;
  resp_counters.np_cnp_sent = 0;  // stuck (E810 bug)
  const auto report = check_counters(b.trace(), RdmaVerb::kWrite,
                                     req_counters, resp_counters, {kReqIp},
                                     {kRespIp});
  ASSERT_FALSE(report.consistent());
  EXPECT_EQ(report.inconsistencies[0].counter, "np_cnp_sent");
  EXPECT_EQ(report.inconsistencies[0].nic, "responder");
}

TEST(CounterAnalyzer, AcceptsCorrectCnpCounter) {
  TraceBuilder b;
  b.cnp(kRespIp, kReqIp, kReqQpn, 300);
  RnicCounters req_counters, resp_counters;
  resp_counters.np_cnp_sent = 1;
  const auto report = check_counters(b.trace(), RdmaVerb::kWrite,
                                     req_counters, resp_counters, {kReqIp},
                                     {kRespIp});
  EXPECT_TRUE(report.consistent());
}

TEST(CounterAnalyzer, FlagsStuckImpliedNakOnReadDrops) {
  TraceBuilder b;
  b.read_resp(1, 100).read_resp(2, 200, EventType::kDrop).read_resp(3, 300);
  b.read_request(2, 400, 2048);
  b.read_resp(2, 500).read_resp(3, 600);
  RnicCounters req_counters, resp_counters;
  req_counters.implied_nak_seq_err = 0;  // stuck (CX4 Lx bug)
  resp_counters.retransmitted_packets = 2;
  const auto report = check_counters(b.trace(), RdmaVerb::kRead,
                                     req_counters, resp_counters, {kReqIp},
                                     {kRespIp});
  ASSERT_FALSE(report.consistent());
  bool flagged = false;
  for (const auto& inc : report.inconsistencies) {
    flagged = flagged || inc.counter == "implied_nak_seq_err";
  }
  EXPECT_TRUE(flagged);
}

TEST(CounterAnalyzer, FlagsMissingNakCounters) {
  TraceBuilder b;
  b.data(1, 100).data(2, 200, EventType::kDrop).data(3, 300);
  b.nak(2, 400);
  b.data(2, 500).data(3, 600);
  RnicCounters req_counters, resp_counters;  // all zero
  const auto report = check_counters(b.trace(), RdmaVerb::kWrite,
                                     req_counters, resp_counters, {kReqIp},
                                     {kRespIp});
  ASSERT_FALSE(report.consistent());
  bool oos = false, seq_err = false;
  for (const auto& inc : report.inconsistencies) {
    oos = oos || inc.counter == "out_of_sequence";
    seq_err = seq_err || inc.counter == "packet_seq_err";
  }
  EXPECT_TRUE(oos);
  EXPECT_TRUE(seq_err);
}

TEST(CounterAnalyzer, CleanTraceWithZeroCountersIsConsistent) {
  TraceBuilder b;
  for (std::uint32_t i = 1; i <= 5; ++i) b.data(i, i * 100);
  b.ack(5, 600);
  RnicCounters req_counters, resp_counters;
  const auto report = check_counters(b.trace(), RdmaVerb::kWrite,
                                     req_counters, resp_counters, {kReqIp},
                                     {kRespIp});
  EXPECT_TRUE(report.consistent());
}

}  // namespace
}  // namespace lumina
