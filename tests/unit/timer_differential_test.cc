// Differential test: the hierarchical timing wheel against the per-event
// calendar-queue timer path.
//
// schedule_timer_at/after must be observationally identical to plain
// schedule_at/after — same (when, id) firing order, same returned ids,
// same counters including max_queue_depth (tombstone lifetime parity).
// This harness reuses the scripted-workload idea of
// sim_differential_test.cc: seeded-random scripts mixing plain events and
// timer events, heavy cancel/re-arm churn (the retransmission-timer
// pattern), nested scheduling, run_until slicing — executed once with the
// kWheel backend and once with kCalendar (which routes timers through
// schedule_at, the reference path), asserting identical observations.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace lumina {
namespace {

enum class OpKind {
  kScheduleAt,      // plain event at absolute `tick`
  kScheduleAfter,   // plain event at now + `tick`
  kTimerAt,         // timer at absolute `tick`
  kTimerAfter,      // timer at now + `tick`
  kRearm,           // cancel slot `target`, then arm a timer (RTO pattern)
  kCancelSlot,      // cancel the id recorded for slot `target`
  kCancelRaw,       // cancel ids never handed out
  kStop,            // stop() — callback-only
  kRun,             // run() — top-level only
  kRunUntil,        // run_until(tick) — top-level only
};

struct Op {
  OpKind kind;
  Tick tick = 0;
  int slot = -1;
  int target = -1;
};

struct Script {
  std::vector<Op> top;
  std::vector<std::vector<Op>> body;  // indexed by slot
};

class ScriptGen {
 public:
  explicit ScriptGen(std::uint64_t seed) : rng_(seed) {}

  Script generate() {
    Script s;
    const int top_ops = 8 + static_cast<int>(rng_() % 48);
    for (int i = 0; i < top_ops; ++i) {
      s.top.push_back(top_op(s));
    }
    s.top.push_back({OpKind::kRun});
    return s;
  }

 private:
  Op top_op(Script& s) {
    switch (rng_() % 12) {
      case 0:
        return {OpKind::kRunUntil, random_time()};
      case 1:
        return cancel_op();
      case 2:
        return {OpKind::kRun};
      default:
        return schedule_op(s, /*depth=*/0);
    }
  }

  Op schedule_op(Script& s, int depth) {
    const int slot = static_cast<int>(s.body.size());
    s.body.emplace_back();
    if (depth < 3) {
      const int body_ops = static_cast<int>(rng_() % 4);
      for (int i = 0; i < body_ops; ++i) {
        Op op;  // materialize before indexing: s.body may grow
        switch (rng_() % 8) {
          case 0:
            op = cancel_op();
            break;
          case 1:
            if (depth >= 1) {
              op = Op{OpKind::kStop};
              break;
            }
            [[fallthrough]];
          default:
            op = schedule_op(s, depth + 1);
        }
        s.body[static_cast<std::size_t>(slot)].push_back(op);
      }
    }
    Op op;
    switch (rng_() % 6) {
      case 0:
        op.kind = OpKind::kScheduleAt;
        op.tick = random_time();
        break;
      case 1:
        op.kind = OpKind::kScheduleAfter;
        op.tick = static_cast<Tick>(rng_() % 5000);
        break;
      case 2:
        op.kind = OpKind::kTimerAt;
        op.tick = random_time();
        break;
      case 3: {
        // The RTO idiom: disarm whatever a previous slot armed, arm anew.
        op.kind = OpKind::kRearm;
        op.tick = rto_delay();
        if (!slots_seen_.empty()) {
          op.target = slots_seen_[rng_() % slots_seen_.size()];
        }
        break;
      }
      default:
        op.kind = OpKind::kTimerAfter;
        op.tick = rto_delay();
        break;
    }
    op.slot = slot;
    slots_seen_.push_back(slot);
    return op;
  }

  Op cancel_op() {
    if (slots_seen_.empty() || rng_() % 8 == 0) {
      return {OpKind::kCancelRaw, 0, -1, -1};
    }
    Op op{OpKind::kCancelSlot};
    op.target = slots_seen_[rng_() % slots_seen_.size()];
    return op;
  }

  Tick random_time() {
    switch (rng_() % 4) {
      case 0:  // tie bait: tiny range, collides constantly
        return static_cast<Tick>(rng_() % 8);
      case 1:  // sparse far future — crosses several wheel levels
        return static_cast<Tick>(rng_() % 3'000'000);
      default:  // clustered near-term
        return static_cast<Tick>(rng_() % 4096);
    }
  }

  Tick rto_delay() {
    switch (rng_() % 8) {
      case 0:  // same-tick / sub-slot ties
        return static_cast<Tick>(rng_() % 4);
      case 1:  // level-boundary bait: around 64^k cascade edges
        return (Tick{1} << (6 * (1 + static_cast<int>(rng_() % 3)))) -
               2 + static_cast<Tick>(rng_() % 4);
      case 2:  // far enough out to sit in level 3+
        return static_cast<Tick>(rng_() % 40'000'000);
      default:  // realistic RTO range: tens to hundreds of microseconds
        return static_cast<Tick>(20'000 + rng_() % 500'000);
    }
  }

  std::mt19937_64 rng_;
  std::vector<int> slots_seen_;
};

struct Observation {
  std::vector<std::pair<int, Tick>> firings;
  std::vector<std::uint64_t> ids;
  Tick final_now = 0;
  std::uint64_t events_processed = 0;
  std::size_t pending_events = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t cancel_requests = 0;
};

Observation execute(const Script& script, Simulator::TimerBackend backend) {
  Simulator sched;
  sched.set_timer_backend(backend);
  Observation obs;
  obs.ids.assign(script.body.size(), 0);

  struct Ctx {
    Simulator& sched;
    const Script& script;
    Observation& obs;

    // Defined before apply(): the two are mutually recursive and apply()
    // needs callback()'s deduced return type.
    Simulator::Callback callback(int slot) {
      return [this, slot] {
        obs.firings.emplace_back(slot, sched.now());
        for (const Op& op : script.body[static_cast<std::size_t>(slot)]) {
          apply(op);
        }
      };
    }

    void apply(const Op& op) {
      switch (op.kind) {
        case OpKind::kScheduleAt:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_at(op.tick, callback(op.slot));
          break;
        case OpKind::kScheduleAfter:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_after(op.tick, callback(op.slot));
          break;
        case OpKind::kTimerAt:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_timer_at(op.tick, callback(op.slot));
          break;
        case OpKind::kTimerAfter:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_timer_after(op.tick, callback(op.slot));
          break;
        case OpKind::kRearm:
          if (op.target >= 0) {
            sched.cancel(obs.ids[static_cast<std::size_t>(op.target)]);
          }
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_timer_after(op.tick, callback(op.slot));
          break;
        case OpKind::kCancelSlot:
          sched.cancel(obs.ids[static_cast<std::size_t>(op.target)]);
          break;
        case OpKind::kCancelRaw:
          sched.cancel(0x7fff'ffff'ffffULL);
          sched.cancel(0);
          break;
        case OpKind::kStop:
          sched.stop();
          break;
        case OpKind::kRun:
          sched.run();
          break;
        case OpKind::kRunUntil:
          sched.run_until(op.tick);
          break;
      }
    }

  };
  Ctx ctx{sched, script, obs};

  for (const Op& op : script.top) {
    ctx.apply(op);
  }

  obs.final_now = sched.now();
  obs.events_processed = sched.events_processed();
  obs.pending_events = sched.pending_events();
  obs.max_queue_depth = sched.max_queue_depth();
  obs.cancel_requests = sched.cancel_requests();
  return obs;
}

constexpr int kWorkloads = 1200;

TEST(TimerDifferential, WheelMatchesPerEventTimers) {
  int total_firings = 0;
  int total_cancels = 0;
  for (int seed = 1; seed <= kWorkloads; ++seed) {
    ScriptGen gen(static_cast<std::uint64_t>(seed) * 0xbf58476d1ce4e5b9ULL);
    const Script script = gen.generate();

    const Observation got =
        execute(script, Simulator::TimerBackend::kWheel);
    const Observation want =
        execute(script, Simulator::TimerBackend::kCalendar);

    ASSERT_EQ(got.firings, want.firings) << "seed " << seed;
    ASSERT_EQ(got.ids, want.ids) << "seed " << seed;
    ASSERT_EQ(got.final_now, want.final_now) << "seed " << seed;
    ASSERT_EQ(got.events_processed, want.events_processed) << "seed " << seed;
    ASSERT_EQ(got.pending_events, want.pending_events) << "seed " << seed;
    ASSERT_EQ(got.max_queue_depth, want.max_queue_depth) << "seed " << seed;
    ASSERT_EQ(got.cancel_requests, want.cancel_requests) << "seed " << seed;

    total_firings += static_cast<int>(want.firings.size());
    total_cancels += static_cast<int>(want.cancel_requests);
  }
  // Guard against the generator degenerating into trivial scripts.
  EXPECT_GT(total_firings, 10'000);
  EXPECT_GT(total_cancels, 2'000);
}

// A long-lived churn soak on one simulator instance: a fixed population of
// "QPs" each keeps exactly one timer armed, re-arming with fresh deadlines
// from its callback and getting disarmed/re-armed by a periodic "ACK"
// event — the steady state the wheel is built for. Checked against the
// calendar backend.
TEST(TimerDifferential, SteadyStateChurnMatches) {
  // Static so the local Driver struct below can name them.
  static constexpr int kQps = 257;
  static constexpr Tick kHorizon = 40'000'000;

  auto run = [&](Simulator::TimerBackend backend) {
    Simulator sim;
    sim.set_timer_backend(backend);
    std::vector<std::uint64_t> timer_ids(kQps, 0);
    std::vector<std::pair<int, Tick>> fires;
    std::mt19937_64 rng(0x5eed);

    struct Driver {
      Simulator& sim;
      std::vector<std::uint64_t>& timer_ids;
      std::vector<std::pair<int, Tick>>& fires;
      std::mt19937_64& rng;

      void arm(int qp) {
        const Tick rto = 20'000 + static_cast<Tick>(rng() % 300'000);
        timer_ids[static_cast<std::size_t>(qp)] =
            sim.schedule_timer_after(rto, [this, qp] {
              fires.emplace_back(qp, sim.now());
              arm(qp);  // back-to-back re-arm, like an RTO retry
            });
      }

      void ack_tick(Tick period) {
        sim.schedule_after(period, [this, period] {
          // "ACK": disarm + re-arm a pseudo-random third of the QPs.
          for (int qp = 0; qp < kQps; ++qp) {
            if (rng() % 3 != 0) continue;
            sim.cancel(timer_ids[static_cast<std::size_t>(qp)]);
            arm(qp);
          }
          ack_tick(period);
        });
      }
    };
    Driver driver{sim, timer_ids, fires, rng};
    for (int qp = 0; qp < kQps; ++qp) driver.arm(qp);
    driver.ack_tick(/*period=*/70'001);
    sim.run_until(kHorizon);

    return std::tuple(fires, sim.events_processed(), sim.pending_events(),
                      sim.max_queue_depth(), sim.now());
  };

  const auto got = run(Simulator::TimerBackend::kWheel);
  const auto want = run(Simulator::TimerBackend::kCalendar);
  EXPECT_EQ(std::get<0>(got), std::get<0>(want));
  EXPECT_EQ(std::get<1>(got), std::get<1>(want));
  EXPECT_EQ(std::get<2>(got), std::get<2>(want));
  EXPECT_EQ(std::get<3>(got), std::get<3>(want));
  EXPECT_EQ(std::get<4>(got), std::get<4>(want));
}

}  // namespace
}  // namespace lumina
