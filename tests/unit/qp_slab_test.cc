// QP-slab property tests (docs/rnic.md): free-list recycling, handle
// stability under churn, and the invariants the million-QP regime leans
// on — raw QueuePair pointers never move, stale QpIndex handles resolve
// to nullptr (never to the slot's new tenant), and destroyed slots are
// recycled before fresh ones are opened.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rnic/device_profile.h"
#include "rnic/qp.h"
#include "rnic/rnic.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace lumina {
namespace {

class QpSlabTest : public ::testing::Test {
 protected:
  QpSlabTest()
      : nic_(&sim_, "slab-nic", DeviceProfile::get(NicType::kCx6Dx),
             RoceParameters{}, MacAddress::from_u48(0x0200000000aaULL)) {}

  Simulator sim_;
  Rnic nic_;
};

TEST_F(QpSlabTest, HandlesResolveAndSurviveGrowth) {
  // Create enough QPs to cross several chunk boundaries; every pointer
  // captured at create time must stay valid (chunks never move).
  constexpr int kN = 1000;  // ~4 chunks of 256
  std::vector<QueuePair*> ptrs;
  std::vector<QpIndex> handles;
  for (int i = 0; i < kN; ++i) {
    QueuePair* qp = nic_.create_qp(QpConfig{});
    ptrs.push_back(qp);
    handles.push_back(qp->self_index());
  }
  EXPECT_EQ(nic_.qp_count(), static_cast<std::size_t>(kN));
  EXPECT_GE(nic_.qp_slab().capacity(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(nic_.qp(handles[static_cast<std::size_t>(i)]),
              ptrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(nic_.find_qp(ptrs[static_cast<std::size_t>(i)]->qpn()),
              ptrs[static_cast<std::size_t>(i)]);
  }
}

TEST_F(QpSlabTest, DestroyInvalidatesOnlyThatHandle) {
  QueuePair* a = nic_.create_qp(QpConfig{});
  QueuePair* b = nic_.create_qp(QpConfig{});
  const QpIndex ia = a->self_index();
  const QpIndex ib = b->self_index();
  const std::uint32_t qpn_a = a->qpn();

  nic_.destroy_qp(ia);
  EXPECT_EQ(nic_.qp(ia), nullptr);
  EXPECT_EQ(nic_.find_qp(qpn_a), nullptr);
  EXPECT_EQ(nic_.qp(ib), b);
  EXPECT_EQ(nic_.qp_count(), 1u);

  // Double destroy through the stale handle is the documented no-op.
  nic_.destroy_qp(ia);
  EXPECT_EQ(nic_.qp_count(), 1u);
}

TEST_F(QpSlabTest, FreeListRecyclesLifoWithBumpedGeneration) {
  QueuePair* a = nic_.create_qp(QpConfig{});
  const QpIndex ia = a->self_index();
  const std::size_t cap_before = nic_.qp_slab().capacity();

  nic_.destroy_qp(ia);
  QueuePair* c = nic_.create_qp(QpConfig{});
  const QpIndex ic = c->self_index();

  // The freed slot is reused (LIFO) under a newer generation; the stale
  // handle must NOT resolve to the new tenant.
  EXPECT_EQ(ic.slot, ia.slot);
  EXPECT_NE(ic.gen, ia.gen);
  EXPECT_EQ(nic_.qp(ia), nullptr);
  EXPECT_EQ(nic_.qp(ic), c);
  EXPECT_EQ(nic_.qp_slab().capacity(), cap_before);
  EXPECT_EQ(nic_.qp_slab().recycled_total(), 1u);
}

TEST_F(QpSlabTest, ReserveDoesNotMoveLiveQps) {
  QueuePair* a = nic_.create_qp(QpConfig{});
  const QpIndex ia = a->self_index();
  nic_.reserve_qps(5000);
  EXPECT_GE(nic_.qp_slab().capacity(), 5000u);
  EXPECT_EQ(nic_.qp(ia), a);
  EXPECT_EQ(a->self_index(), ia);
}

TEST_F(QpSlabTest, SeededChurnKeepsHandlesConsistent) {
  // Random create/destroy churn with a model map: at every step each live
  // handle resolves to its original pointer and qpn, every destroyed
  // handle to nullptr, and live_count matches the model.
  Rng rng(0xC0FFEE);
  struct LiveQp {
    QpIndex index;
    QueuePair* ptr;
    std::uint32_t qpn;
  };
  std::vector<LiveQp> live;
  std::vector<QpIndex> dead;
  std::uint64_t creates = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool create = live.empty() || rng.next_below(100) < 55;
    if (create) {
      QueuePair* qp = nic_.create_qp(QpConfig{});
      live.push_back({qp->self_index(), qp, qp->qpn()});
      ++creates;
    } else {
      const std::size_t victim = rng.next_below(live.size());
      nic_.destroy_qp(live[victim].index);
      dead.push_back(live[victim].index);
      live[victim] = live.back();
      live.pop_back();
    }
  }

  EXPECT_EQ(nic_.qp_count(), live.size());
  EXPECT_EQ(nic_.qp_slab().created_total(), creates);
  for (const LiveQp& qp : live) {
    ASSERT_EQ(nic_.qp(qp.index), qp.ptr);
    EXPECT_EQ(qp.ptr->qpn(), qp.qpn);
    EXPECT_EQ(nic_.find_qp(qp.qpn), qp.ptr);
  }
  for (const QpIndex& index : dead) {
    EXPECT_EQ(nic_.qp(index), nullptr);
  }
  // Churn with more creates than destroys still recycles aggressively:
  // capacity stays far below the create total (free list did its job).
  EXPECT_LT(nic_.qp_slab().capacity(), creates);
  EXPECT_GT(nic_.qp_slab().recycled_total(), 0u);
}

TEST_F(QpSlabTest, RecycledSlotsServeBeforeFreshOnes) {
  std::vector<QpIndex> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(nic_.create_qp(QpConfig{})->self_index());
  }
  const std::size_t cap = nic_.qp_slab().capacity();
  for (const QpIndex& h : handles) nic_.destroy_qp(h);
  for (int i = 0; i < 10; ++i) {
    const QpIndex h = nic_.create_qp(QpConfig{})->self_index();
    EXPECT_LT(h.slot, 10u);  // recycled, not fresh
  }
  EXPECT_EQ(nic_.qp_slab().capacity(), cap);
}

}  // namespace
}  // namespace lumina
