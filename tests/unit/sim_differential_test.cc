// Differential test: the calendar-queue Simulator against the retired
// binary-heap scheduler (sim/reference_scheduler.h).
//
// The hot-path overhaul (docs/simulator.md) must be observationally
// invisible: identical (time, seq) firing order, identical returned event
// ids, identical clock progression and counters. This harness generates
// seeded-random scheduling workloads — schedule_at / schedule_after /
// cancel (including cancel-of-fired, cancel-of-unknown, double-cancel),
// same-tick ties, negative delays, nested scheduling from inside callbacks,
// stop(), run_until() — as pure data scripts, executes each script against
// both implementations, and asserts the observable behavior is identical.
//
// Scripts are data (not closures) precisely so the same workload can drive
// two different scheduler types through the same template executor.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/reference_scheduler.h"
#include "sim/simulator.h"

namespace lumina {
namespace {

// ---------------------------------------------------------------------------
// Workload script model
// ---------------------------------------------------------------------------

enum class OpKind {
  kScheduleAt,     // schedule slot `slot` at absolute time `tick`
  kScheduleAfter,  // schedule slot `slot` at now + `tick` (may be negative)
  kCancelSlot,     // cancel the id recorded for slot `target` (0 if unset)
  kCancelRaw,      // cancel a raw id never returned by schedule_*
  kStop,           // stop() — callback-only
  kRun,            // run() — top-level only
  kRunUntil,       // run_until(tick) — top-level only
};

struct Op {
  OpKind kind;
  Tick tick = 0;
  int slot = -1;    // slot defined by a schedule op
  int target = -1;  // slot referenced by kCancelSlot
};

/// One workload: a top-level op sequence plus, per slot, the op sequence its
/// callback executes when (if) it fires. Slot k is scheduled by exactly one
/// schedule op somewhere in the script.
struct Script {
  std::vector<Op> top;
  std::vector<std::vector<Op>> body;  // indexed by slot
};

class ScriptGen {
 public:
  explicit ScriptGen(std::uint64_t seed) : rng_(seed) {}

  Script generate() {
    Script s;
    const int top_ops = 8 + static_cast<int>(rng_() % 48);
    for (int i = 0; i < top_ops; ++i) {
      s.top.push_back(top_op(s));
    }
    // Always drain at the end so every surviving event fires and the final
    // counters cover the whole script.
    s.top.push_back({OpKind::kRun});
    return s;
  }

 private:
  Op top_op(Script& s) {
    switch (rng_() % 10) {
      case 0:
        return {OpKind::kRunUntil, random_time()};
      case 1:
        return cancel_op();
      case 2:
        return {OpKind::kRun};
      default:
        return schedule_op(s, /*depth=*/0);
    }
  }

  /// Allocates a slot and generates its callback body (depth-limited so
  /// nested schedules terminate).
  Op schedule_op(Script& s, int depth) {
    const int slot = static_cast<int>(s.body.size());
    s.body.emplace_back();
    if (depth < 3) {
      const int body_ops = static_cast<int>(rng_() % 4);
      for (int i = 0; i < body_ops; ++i) {
        // Materialize the op BEFORE indexing s.body: a nested schedule_op
        // grows s.body and would invalidate a held reference.
        Op op;
        switch (rng_() % 8) {
          case 0:
            op = cancel_op();
            break;
          case 1:
            if (depth >= 1) {  // stop() only from nested callbacks: rarer
              op = Op{OpKind::kStop};
              break;
            }
            [[fallthrough]];
          default:
            op = schedule_op(s, depth + 1);
        }
        s.body[static_cast<std::size_t>(slot)].push_back(op);
      }
    }
    Op op;
    if (rng_() % 2 == 0) {
      op.kind = OpKind::kScheduleAt;
      op.tick = random_time();
    } else {
      op.kind = OpKind::kScheduleAfter;
      // Mostly small forward delays (clustered timestamps — the calendar
      // queue's design load), sometimes zero or negative.
      const auto r = rng_() % 16;
      op.tick = r == 0 ? -static_cast<Tick>(rng_() % 100)
                       : static_cast<Tick>(rng_() % 5000);
    }
    op.slot = slot;
    slots_seen_.push_back(slot);
    return op;
  }

  Op cancel_op() {
    if (slots_seen_.empty() || rng_() % 8 == 0) {
      // Raw ids the schedulers never handed out — far future and 0-adjacent.
      return {OpKind::kCancelRaw, 0, -1, -1};
    }
    Op op{OpKind::kCancelSlot};
    op.target = slots_seen_[rng_() % slots_seen_.size()];
    return op;
  }

  Tick random_time() {
    switch (rng_() % 4) {
      case 0:  // tie bait: tiny range, collides constantly
        return static_cast<Tick>(rng_() % 8);
      case 1:  // sparse far future
        return static_cast<Tick>(rng_() % 3'000'000);
      default:  // clustered near-term
        return static_cast<Tick>(rng_() % 4096);
    }
  }

  std::mt19937_64 rng_;
  std::vector<int> slots_seen_;
};

// ---------------------------------------------------------------------------
// Script executor (works for both scheduler types)
// ---------------------------------------------------------------------------

struct Observation {
  std::vector<std::pair<int, Tick>> firings;  // (slot, fire time) in order
  std::vector<std::uint64_t> ids;             // per slot; 0 = never scheduled
  Tick final_now = 0;
  std::uint64_t events_processed = 0;
  std::size_t pending_events = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t cancel_requests = 0;
};

template <typename Scheduler>
Observation execute(const Script& script) {
  Scheduler sched;
  Observation obs;
  obs.ids.assign(script.body.size(), 0);

  struct Ctx {
    Scheduler& sched;
    const Script& script;
    Observation& obs;

    void apply(const Op& op) {
      switch (op.kind) {
        case OpKind::kScheduleAt:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_at(op.tick, callback(op.slot));
          break;
        case OpKind::kScheduleAfter:
          obs.ids[static_cast<std::size_t>(op.slot)] =
              sched.schedule_after(op.tick, callback(op.slot));
          break;
        case OpKind::kCancelSlot:
          sched.cancel(obs.ids[static_cast<std::size_t>(op.target)]);
          break;
        case OpKind::kCancelRaw:
          sched.cancel(0x7fff'ffff'ffffULL);
          sched.cancel(0);
          break;
        case OpKind::kStop:
          sched.stop();
          break;
        case OpKind::kRun:
          sched.run();
          break;
        case OpKind::kRunUntil:
          sched.run_until(op.tick);
          break;
      }
    }

    auto callback(int slot) {
      return [this, slot] {
        obs.firings.emplace_back(slot, sched.now());
        for (const Op& op : script.body[static_cast<std::size_t>(slot)]) {
          apply(op);
        }
      };
    }
  };
  Ctx ctx{sched, script, obs};

  for (const Op& op : script.top) {
    ctx.apply(op);
  }

  obs.final_now = sched.now();
  obs.events_processed = sched.events_processed();
  obs.pending_events = sched.pending_events();
  obs.max_queue_depth = sched.max_queue_depth();
  obs.cancel_requests = sched.cancel_requests();
  return obs;
}

// ---------------------------------------------------------------------------
// The differential check
// ---------------------------------------------------------------------------

constexpr int kWorkloads = 1200;

TEST(SimDifferential, CalendarQueueMatchesReferenceHeap) {
  int total_firings = 0;
  int total_cancels = 0;
  for (int seed = 1; seed <= kWorkloads; ++seed) {
    ScriptGen gen(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL);
    const Script script = gen.generate();

    const Observation got = execute<Simulator>(script);
    const Observation want = execute<ReferenceScheduler>(script);

    ASSERT_EQ(got.firings, want.firings) << "seed " << seed;
    ASSERT_EQ(got.ids, want.ids) << "seed " << seed;
    ASSERT_EQ(got.final_now, want.final_now) << "seed " << seed;
    ASSERT_EQ(got.events_processed, want.events_processed) << "seed " << seed;
    ASSERT_EQ(got.pending_events, want.pending_events) << "seed " << seed;
    ASSERT_EQ(got.max_queue_depth, want.max_queue_depth) << "seed " << seed;
    ASSERT_EQ(got.cancel_requests, want.cancel_requests) << "seed " << seed;

    total_firings += static_cast<int>(want.firings.size());
    total_cancels += static_cast<int>(want.cancel_requests);
  }
  // Guard against the generator degenerating into trivial scripts.
  EXPECT_GT(total_firings, 10 * kWorkloads);
  EXPECT_GT(total_cancels, kWorkloads);
}

// Deep same-tick pileups exercise the tie-break (when, seq) path harder
// than the uniform generator does.
TEST(SimDifferential, MassiveSameTickTies) {
  for (int seed = 1; seed <= 50; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    Script script;
    for (int i = 0; i < 400; ++i) {
      Op op{rng() % 2 == 0 ? OpKind::kScheduleAt : OpKind::kScheduleAfter,
            static_cast<Tick>(rng() % 3), static_cast<int>(script.body.size())};
      script.body.emplace_back();
      script.top.push_back(op);
      if (rng() % 4 == 0) {
        Op cancel{OpKind::kCancelSlot};
        cancel.target = static_cast<int>(rng() % script.body.size());
        script.top.push_back(cancel);
      }
    }
    script.top.push_back({OpKind::kRun});

    const Observation got = execute<Simulator>(script);
    const Observation want = execute<ReferenceScheduler>(script);
    ASSERT_EQ(got.firings, want.firings) << "seed " << seed;
    ASSERT_EQ(got.ids, want.ids) << "seed " << seed;
    ASSERT_EQ(got.events_processed, want.events_processed) << "seed " << seed;
    ASSERT_EQ(got.max_queue_depth, want.max_queue_depth) << "seed " << seed;
  }
}

// Wide time spans force calendar resizes and the sparse direct-search
// fallback; the heap is insensitive to either, making it a good oracle.
TEST(SimDifferential, SparseWideSpanWorkloads) {
  for (int seed = 1; seed <= 50; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 7919);
    Script script;
    for (int i = 0; i < 200; ++i) {
      Op op{OpKind::kScheduleAt,
            static_cast<Tick>(rng() % 1'000'000'000'000LL),
            static_cast<int>(script.body.size())};
      script.body.emplace_back();
      script.top.push_back(op);
    }
    script.top.push_back({OpKind::kRun});

    const Observation got = execute<Simulator>(script);
    const Observation want = execute<ReferenceScheduler>(script);
    ASSERT_EQ(got.firings, want.firings) << "seed " << seed;
    ASSERT_EQ(got.final_now, want.final_now) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lumina
