// Unit tests for the orchestrator: intent translation (Fig. 2), flow
// registration, trace reconstruction ordering, integrity checking, and
// result collection (Table 1).
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"

namespace lumina {
namespace {

TestConfig small_config(RdmaVerb verb = RdmaVerb::kWrite) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = verb;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 4096;
  return cfg;
}

TEST(Orchestrator, TranslatesWriteIntentToForwardFlow) {
  // Fig. 2: relative (qpn=1, psn=4) + runtime metadata -> absolute rule.
  Orchestrator orch(small_config(RdmaVerb::kWrite));
  orch.generator().setup();
  const auto& meta = orch.generator().connections()[0];

  const EventRule rule =
      orch.translate_intent(DataPacketEvent{1, 4, EventType::kEcn, 1});
  EXPECT_EQ(rule.flow.src_ip, meta.requester.ip);
  EXPECT_EQ(rule.flow.dst_ip, meta.responder.ip);
  EXPECT_EQ(rule.flow.dst_qpn, meta.responder.qpn);
  EXPECT_EQ(rule.psn, psn_add(meta.requester.ipsn, 3));  // 4th packet
  EXPECT_EQ(rule.iter, 1u);
  EXPECT_EQ(rule.action, EventType::kEcn);
}

TEST(Orchestrator, TranslatesReadIntentToResponseFlow) {
  // For Read, the data packets are the responder's responses, but they
  // reuse the requester's PSN space.
  Orchestrator orch(small_config(RdmaVerb::kRead));
  orch.generator().setup();
  const auto& meta = orch.generator().connections()[1];

  const EventRule rule =
      orch.translate_intent(DataPacketEvent{2, 5, EventType::kDrop, 2});
  EXPECT_EQ(rule.flow.src_ip, meta.responder.ip);
  EXPECT_EQ(rule.flow.dst_ip, meta.requester.ip);
  EXPECT_EQ(rule.flow.dst_qpn, meta.requester.qpn);
  EXPECT_EQ(rule.psn, psn_add(meta.requester.ipsn, 4));
  EXPECT_EQ(rule.iter, 2u);
}

TEST(Orchestrator, RejectsIntentForMissingConnection) {
  Orchestrator orch(small_config());
  orch.generator().setup();
  EXPECT_THROW(
      orch.translate_intent(DataPacketEvent{9, 1, EventType::kDrop, 1}),
      YamlError);
}

TEST(Orchestrator, TraceIsSortedByMirrorSequence) {
  Orchestrator orch(small_config());
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  ASSERT_GT(result.trace.size(), 0u);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].meta.mirror_seq, i);
  }
  // Switch timestamps are monotone when sorted by mirror sequence.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].time(), result.trace[i - 1].time());
  }
}

TEST(Orchestrator, IntegrityPassesOnHealthyCapture) {
  Orchestrator orch(small_config());
  const TestResult& result = orch.run();
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_TRUE(result.integrity.seqnums_consecutive);
  EXPECT_TRUE(result.integrity.matches_mirrored_count);
  EXPECT_TRUE(result.integrity.matches_roce_rx_count);
  EXPECT_EQ(result.integrity.missing_seqnums, 0u);
}

TEST(Orchestrator, IntegrityDetectsDumperLoss) {
  // Starve the dumper pool: one slow core, tiny rings.
  Orchestrator::Options options;
  options.num_dumpers = 1;
  options.dumper_options.cores = 1;
  options.dumper_options.per_packet_service = 5000;  // 0.2 Mpps
  options.dumper_options.ring_capacity = 4;
  TestConfig cfg = small_config();
  cfg.traffic.message_size = 64 * 1024;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);  // the under-test traffic is unaffected
  EXPECT_FALSE(result.integrity.ok());
  EXPECT_GT(result.integrity.missing_seqnums, 0u);
  EXPECT_FALSE(result.integrity.matches_mirrored_count);
}

TEST(Orchestrator, CollectsTable1Results) {
  TestConfig cfg = small_config();
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 2, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  // Dumped packets.
  EXPECT_GT(result.trace.size(), 0u);
  // Network stack counters from both NICs.
  EXPECT_GT(result.requester_counters().tx_packets, 0u);
  EXPECT_GT(result.responder_counters().rx_packets, 0u);
  // Traffic generator log (application metrics).
  ASSERT_EQ(result.flows.size(), 2u);
  EXPECT_GT(result.flows[0].goodput_gbps(), 0.0);
  // Switch counters.
  EXPECT_GT(result.switch_counters.roce_rx, 0u);
  EXPECT_EQ(result.switch_counters.dropped_by_event, 1u);
  EXPECT_EQ(result.switch_counters.events_applied, 1u);
  // Connection metadata for analyzers.
  EXPECT_EQ(result.connections.size(), 2u);
  EXPECT_NE(result.connections[0].requester.qpn,
            result.connections[1].requester.qpn);
}

TEST(Orchestrator, RunIsIdempotent) {
  Orchestrator orch(small_config());
  const TestResult& first = orch.run();
  const std::size_t trace_size = first.trace.size();
  const TestResult& second = orch.run();  // returns cached result
  EXPECT_EQ(second.trace.size(), trace_size);
}

TEST(Orchestrator, DeterministicAcrossIdenticalRuns) {
  TestConfig cfg = small_config();
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{2, 3, EventType::kDrop, 1});
  Orchestrator a(cfg);
  Orchestrator b(cfg);
  const TestResult& ra = a.run();
  const TestResult& rb = b.run();
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace[i].time(), rb.trace[i].time());
    EXPECT_EQ(ra.trace[i].view.bth.psn, rb.trace[i].view.bth.psn);
    EXPECT_EQ(ra.trace[i].meta.event, rb.trace[i].meta.event);
  }
  EXPECT_EQ(ra.flows[0].avg_mct_us(), rb.flows[0].avg_mct_us());
}

TEST(Orchestrator, SeedChangesQpNumbering) {
  Orchestrator::Options options_a;
  options_a.seed = 1;
  Orchestrator::Options options_b;
  options_b.seed = 2;
  Orchestrator a(small_config(), options_a);
  Orchestrator b(small_config(), options_b);
  a.run();
  b.run();
  EXPECT_NE(a.result().connections[0].requester.ipsn,
            b.result().connections[0].requester.ipsn);
}

TEST(Orchestrator, MultiGidRoutesAllAddresses) {
  TestConfig cfg = small_config();
  cfg.requester().ip_list = {Ipv4Address::from_octets(10, 0, 0, 1),
                           Ipv4Address::from_octets(10, 0, 0, 11)};
  cfg.responder().ip_list = {Ipv4Address::from_octets(10, 0, 1, 1)};
  cfg.traffic.multi_gid = true;
  cfg.traffic.num_connections = 4;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  // Connections alternate between the two requester GIDs.
  EXPECT_EQ(result.connections[0].requester.ip.to_string(), "10.0.0.1");
  EXPECT_EQ(result.connections[1].requester.ip.to_string(), "10.0.0.11");
  EXPECT_EQ(result.connections[2].requester.ip.to_string(), "10.0.0.1");
}

}  // namespace
}  // namespace lumina
