// Unit tests for the traffic dumper: RSS spreading, per-core capacity and
// overflow, packet trimming, TERM handling, and pcap persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "dumper/dumper.h"

namespace lumina {
namespace {

Packet mirrored_packet(std::uint64_t seq, Tick ts, std::uint16_t udp_port,
                       std::uint32_t payload = 1024) {
  RocePacketSpec spec;
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, payload};
  spec.payload_len = payload;
  spec.psn = static_cast<std::uint32_t>(seq);
  Packet pkt = build_roce_packet(spec);
  set_src_mac(pkt, seq);                     // mirror sequence number
  set_dst_mac(pkt, static_cast<std::uint64_t>(ts));  // switch timestamp
  set_ttl(pkt, static_cast<std::uint8_t>(EventType::kNone));
  set_udp_dst_port(pkt, udp_port);
  return pkt;
}

/// Feeds packets into a dumper directly (bypassing a link).
void feed(Simulator& sim, TrafficDumper& dumper, int count,
          Tick inter_arrival, bool randomize_ports, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const std::uint16_t port =
        randomize_ports ? static_cast<std::uint16_t>(rng.next_below(0xffff))
                        : kRoceUdpPort;
    sim.schedule_at(i * inter_arrival,
                    [&dumper, pkt = mirrored_packet(
                         static_cast<std::uint64_t>(i), i * inter_arrival,
                         port)]() mutable {
                      dumper.handle_packet(0, std::move(pkt));
                    });
  }
  sim.run();
}

TEST(Dumper, CapturesAndExtractsMetadata) {
  Simulator sim;
  TrafficDumper dumper(&sim, "d0", {});
  dumper.handle_packet(0, mirrored_packet(7, 12345, 4000));
  ASSERT_EQ(dumper.packets().size(), 1u);
  EXPECT_EQ(dumper.packets()[0].meta.mirror_seq, 7u);
  EXPECT_EQ(dumper.packets()[0].meta.ingress_timestamp, 12345);
  EXPECT_EQ(dumper.counters().captured, 1u);
  EXPECT_EQ(dumper.counters().discarded, 0u);
}

TEST(Dumper, TrimsTo128BytesKeepingOriginalLength) {
  Simulator sim;
  TrafficDumper dumper(&sim, "d0", {});
  const Packet big = mirrored_packet(0, 0, 4000, 4096);
  const std::size_t orig = big.size();
  dumper.handle_packet(0, big);
  ASSERT_EQ(dumper.packets().size(), 1u);
  EXPECT_EQ(dumper.packets()[0].pkt.size(), 128u);
  EXPECT_EQ(dumper.packets()[0].orig_len, orig);
  // Headers still parse from the trimmed capture.
  const auto view = parse_roce(dumper.packets()[0].pkt, true);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->payload_len, 4096u);
}

TEST(Dumper, SmallPacketsNotPadded) {
  Simulator sim;
  TrafficDumper dumper(&sim, "d0", {});
  dumper.handle_packet(0, mirrored_packet(0, 0, 4000, 8));
  EXPECT_LT(dumper.packets()[0].pkt.size(), 128u);
}

TEST(Dumper, SingleFlowWithoutRandomizationOverloadsOneCore) {
  // All packets hash to one core: arrival every 100 ns vs 300 ns service.
  Simulator sim;
  TrafficDumper::Options options;
  options.cores = 8;
  options.per_packet_service = 300;
  options.ring_capacity = 64;
  TrafficDumper dumper(&sim, "d0", options);
  feed(sim, dumper, 2000, 100, /*randomize_ports=*/false);
  EXPECT_GT(dumper.counters().discarded, 0u);
  EXPECT_LT(dumper.counters().captured, 2000u);
}

TEST(Dumper, RandomizedPortsSpreadAcrossCores) {
  // Same load with randomized UDP ports: 8 cores absorb it.
  Simulator sim;
  TrafficDumper::Options options;
  options.cores = 8;
  options.per_packet_service = 300;
  options.ring_capacity = 64;
  TrafficDumper dumper(&sim, "d0", options);
  feed(sim, dumper, 2000, 100, /*randomize_ports=*/true);
  EXPECT_EQ(dumper.counters().discarded, 0u);
  EXPECT_EQ(dumper.counters().captured, 2000u);
}

TEST(Dumper, SlowArrivalNeverDropsEvenOnOneCore) {
  Simulator sim;
  TrafficDumper::Options options;
  options.cores = 1;
  options.per_packet_service = 300;
  options.ring_capacity = 16;
  TrafficDumper dumper(&sim, "d0", options);
  feed(sim, dumper, 500, 400, false);  // arrival slower than service
  EXPECT_EQ(dumper.counters().discarded, 0u);
}

TEST(Dumper, TerminateRestoresUdpPortsAndStopsCapture) {
  Simulator sim;
  TrafficDumper dumper(&sim, "d0", {});
  dumper.handle_packet(0, mirrored_packet(0, 0, 31337));
  dumper.terminate();
  ASSERT_EQ(dumper.packets().size(), 1u);
  const auto view = parse_roce(dumper.packets()[0].pkt, true);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->udp_dst_port, kRoceUdpPort);  // restored (§3.4)
  // Post-TERM arrivals are ignored.
  dumper.handle_packet(0, mirrored_packet(1, 1, 4000));
  EXPECT_EQ(dumper.packets().size(), 1u);
}

TEST(Dumper, WritesPcapAfterTerminate) {
  Simulator sim;
  TrafficDumper dumper(&sim, "d0", {});
  for (int i = 0; i < 5; ++i) {
    dumper.handle_packet(
        0, mirrored_packet(static_cast<std::uint64_t>(i), i * 1000, 9999));
  }
  dumper.terminate();
  const std::string path = ::testing::TempDir() + "/dumper_test.pcap";
  ASSERT_TRUE(dumper.write_pcap(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  // Global header + 5 * (record header + trimmed packet).
  EXPECT_GE(std::ftell(f), 24 + 5 * 16);
  std::fclose(f);
  std::remove(path.c_str());
}

class DumperCoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(DumperCoreSweep, CapacityScalesWithCores) {
  // Offered load: one packet per 50 ns (20 Mpps), service 300 ns/core.
  // Roughly `cores/6` of the load can be captured.
  const int cores = GetParam();
  Simulator sim;
  TrafficDumper::Options options;
  options.cores = cores;
  options.per_packet_service = 300;
  options.ring_capacity = 32;
  TrafficDumper dumper(&sim, "d0", options);
  feed(sim, dumper, 3000, 50, true);
  const double ratio = static_cast<double>(dumper.counters().captured) / 3000;
  const double expected = std::min(1.0, cores * (50.0 / 300.0));
  EXPECT_NEAR(ratio, expected, 0.25) << "cores=" << cores;
}

INSTANTIATE_TEST_SUITE_P(Cores, DumperCoreSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace lumina
