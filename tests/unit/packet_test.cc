// Unit and property tests for the RoCEv2 packet layer: addresses, byte
// codecs, build/parse round trips, iCRC masking invariants, mutators,
// PSN arithmetic, and the pcap writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <tuple>

#include "packet/addresses.h"
#include "packet/bytes.h"
#include "packet/icrc.h"
#include "packet/pcap_writer.h"
#include "packet/roce_packet.h"
#include "util/random.h"

namespace lumina {
namespace {

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

TEST(Addresses, MacRoundTripsThroughU48) {
  const MacAddress mac{{0x02, 0x42, 0xac, 0x11, 0x00, 0x07}};
  EXPECT_EQ(MacAddress::from_u48(mac.to_u48()), mac);
  EXPECT_EQ(mac.to_u48(), 0x0242ac110007ULL);
}

TEST(Addresses, MacFormatsAndParses) {
  const MacAddress mac{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}};
  EXPECT_EQ(mac.to_string(), "de:ad:be:ef:00:01");
  const auto parsed = MacAddress::parse("de:ad:be:ef:00:01");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
  EXPECT_FALSE(MacAddress::parse("not-a-mac").has_value());
  EXPECT_FALSE(MacAddress::parse("00:11:22:33:44").has_value());
}

TEST(Addresses, Ipv4FormatsAndParses) {
  const auto ip = Ipv4Address::from_octets(10, 0, 0, 2);
  EXPECT_EQ(ip.to_string(), "10.0.0.2");
  EXPECT_EQ(Ipv4Address::parse("10.0.0.2"), ip);
  // CIDR suffix accepted (Listing 1 writes "10.0.0.2/24").
  EXPECT_EQ(Ipv4Address::parse("10.0.0.2/24"), ip);
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.300").has_value());
  EXPECT_FALSE(Ipv4Address::parse("banana").has_value());
}

// ---------------------------------------------------------------------------
// Byte codecs
// ---------------------------------------------------------------------------

TEST(Bytes, WriterReaderRoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u24(0xabcdef);
  w.u32(0xdeadbeef);
  w.u48(0x0123456789abULL);
  w.u64(0xfedcba9876543210ULL);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u24(), 0xabcdefu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u48(), 0x0123456789abULL);
  EXPECT_EQ(r.u64(), 0xfedcba9876543210ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderDetectsTruncation) {
  const std::vector<std::uint8_t> buf = {1, 2, 3};
  ByteReader r(buf);
  r.u16();
  r.u32();  // runs past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // reads after failure return 0
}

TEST(Bytes, PokeAndPeekU48) {
  std::vector<std::uint8_t> buf(10, 0);
  poke_u48(buf, 2, 0x0102030405ULL);
  EXPECT_EQ(peek_u48(buf, 2), 0x0102030405ULL);
}

// ---------------------------------------------------------------------------
// PSN arithmetic (24-bit, wrapping)
// ---------------------------------------------------------------------------

TEST(Psn, AddWraps) {
  EXPECT_EQ(psn_add(0xffffff, 1), 0u);
  EXPECT_EQ(psn_add(0, -1), 0xffffffu);
  EXPECT_EQ(psn_add(100, 50), 150u);
}

TEST(Psn, DistanceIsSigned) {
  EXPECT_EQ(psn_distance(5, 3), 2);
  EXPECT_EQ(psn_distance(3, 5), -2);
  EXPECT_EQ(psn_distance(0, 0xffffff), 1);     // across the wrap
  EXPECT_EQ(psn_distance(0xffffff, 0), -1);
}

TEST(Psn, ComparisonsAcrossWrap) {
  EXPECT_TRUE(psn_gt(2, 0xfffffe));
  EXPECT_TRUE(psn_ge(2, 2));
  EXPECT_FALSE(psn_gt(2, 2));
  EXPECT_FALSE(psn_gt(0xfffffe, 2));
}

class PsnPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PsnPropertyTest, AddThenDistanceIsIdentity) {
  const std::uint32_t base = GetParam();
  for (const std::int64_t delta : {-100, -1, 0, 1, 100, 10000}) {
    const std::uint32_t moved = psn_add(base, delta);
    EXPECT_EQ(psn_distance(moved, base), delta);
  }
}

INSTANTIATE_TEST_SUITE_P(WrapPoints, PsnPropertyTest,
                         ::testing::Values(0u, 1u, 0x7fffffu, 0x800000u,
                                           0xfffffeu, 0xffffffu, 12345u));

// ---------------------------------------------------------------------------
// Build / parse round trip
// ---------------------------------------------------------------------------

RocePacketSpec base_spec() {
  RocePacketSpec spec;
  spec.src_mac = MacAddress::from_u48(0x0200000000aa);
  spec.dst_mac = MacAddress::from_u48(0x0200000000bb);
  spec.src_ip = Ipv4Address::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Address::from_octets(10, 0, 0, 2);
  spec.src_udp_port = 50123;
  spec.dest_qpn = 0xabcdef;
  spec.psn = 0x123456;
  return spec;
}

TEST(RocePacket, BuildParseRoundTripWriteOnly) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0x1000, 0x55, 2048};
  spec.payload_len = 2048;
  spec.ack_req = true;
  spec.mig_req = false;

  const Packet pkt = build_roce_packet(spec);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->src_ip, spec.src_ip);
  EXPECT_EQ(view->dst_ip, spec.dst_ip);
  EXPECT_EQ(view->udp_src_port, 50123);
  EXPECT_EQ(view->udp_dst_port, kRoceUdpPort);
  EXPECT_EQ(view->bth.opcode, IbOpcode::kWriteOnly);
  EXPECT_EQ(view->bth.dest_qpn, 0xabcdefu);
  EXPECT_EQ(view->bth.psn, 0x123456u);
  EXPECT_TRUE(view->bth.ack_req);
  EXPECT_FALSE(view->bth.mig_req);
  ASSERT_TRUE(view->reth.has_value());
  EXPECT_EQ(view->reth->vaddr, 0x1000u);
  EXPECT_EQ(view->reth->rkey, 0x55u);
  EXPECT_EQ(view->reth->dma_len, 2048u);
  EXPECT_EQ(view->payload_len, 2048u);
  EXPECT_TRUE(verify_icrc(pkt));
}

TEST(RocePacket, AckCarriesAeth) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kAcknowledge;
  spec.aeth = Aeth::nak_sequence_error(7);

  const auto view = parse_roce(build_roce_packet(spec));
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->aeth.has_value());
  EXPECT_TRUE(view->aeth->is_nak());
  EXPECT_FALSE(view->aeth->is_ack());
  EXPECT_EQ(view->aeth->msn, 7u);
}

TEST(RocePacket, CnpHas16BytePayloadAndNoAeth) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kCnp;
  const Packet pkt = build_roce_packet(spec);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->is_cnp());
  EXPECT_FALSE(view->aeth.has_value());
  EXPECT_EQ(view->payload_len, 16u);
  EXPECT_TRUE(verify_icrc(pkt));
}

TEST(RocePacket, RejectsGarbage) {
  Packet junk;
  junk.bytes.assign(64, 0xcc);
  EXPECT_FALSE(parse_roce(junk).has_value());
  EXPECT_FALSE(verify_icrc(junk));
}

TEST(RocePacket, RejectsTruncatedUnlessAllowed) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, 1024};
  spec.payload_len = 1024;
  Packet pkt = build_roce_packet(spec);
  pkt.bytes.resize(128);  // dumper-style trim
  EXPECT_FALSE(parse_roce(pkt).has_value());
  const auto view = parse_roce(pkt, /*allow_trimmed=*/true);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->payload_len, 1024u);  // derived from the IP header
  EXPECT_EQ(view->bth.psn, spec.psn);
}

using OpcodePayload = std::tuple<IbOpcode, std::uint32_t>;

class RoundTripTest : public ::testing::TestWithParam<OpcodePayload> {};

TEST_P(RoundTripTest, EveryOpcodeAndSizeRoundTrips) {
  const auto [opcode, payload] = GetParam();
  RocePacketSpec spec = base_spec();
  spec.opcode = opcode;
  spec.payload_len = payload;
  if (opcode == IbOpcode::kWriteFirst || opcode == IbOpcode::kWriteOnly ||
      opcode == IbOpcode::kReadRequest) {
    spec.reth = Reth{0x2000, 0x99, payload};
  }
  if (opcode == IbOpcode::kAcknowledge ||
      opcode == IbOpcode::kReadRespFirst ||
      opcode == IbOpcode::kReadRespLast ||
      opcode == IbOpcode::kReadRespOnly) {
    spec.aeth = Aeth::ack(3);
  }
  const Packet pkt = build_roce_packet(spec);
  const auto view = parse_roce(pkt);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bth.opcode, opcode);
  EXPECT_EQ(view->payload_len,
            opcode == IbOpcode::kCnp ? 16u : payload);
  EXPECT_EQ(view->reth.has_value(), spec.reth.has_value());
  EXPECT_EQ(view->aeth.has_value(), spec.aeth.has_value());
  EXPECT_TRUE(verify_icrc(pkt));
}

INSTANTIATE_TEST_SUITE_P(
    Opcodes, RoundTripTest,
    ::testing::Combine(
        ::testing::Values(IbOpcode::kSendFirst, IbOpcode::kSendMiddle,
                          IbOpcode::kSendLast, IbOpcode::kSendOnly,
                          IbOpcode::kWriteFirst, IbOpcode::kWriteMiddle,
                          IbOpcode::kWriteLast, IbOpcode::kWriteOnly,
                          IbOpcode::kReadRequest, IbOpcode::kReadRespFirst,
                          IbOpcode::kReadRespMiddle, IbOpcode::kReadRespLast,
                          IbOpcode::kReadRespOnly, IbOpcode::kAcknowledge,
                          IbOpcode::kCnp),
        ::testing::Values(0u, 1u, 256u, 1024u, 4096u)));

// ---------------------------------------------------------------------------
// iCRC masking invariants — the legality of Lumina's metadata embedding
// ---------------------------------------------------------------------------

Packet data_packet() {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, 1024};
  spec.payload_len = 1024;
  return build_roce_packet(spec);
}

TEST(Icrc, EcnMarkDoesNotInvalidate) {
  Packet pkt = data_packet();
  set_ecn_ce(pkt);
  EXPECT_TRUE(verify_icrc(pkt));
  EXPECT_TRUE(parse_roce(pkt)->ecn_ce());
}

TEST(Icrc, TtlRewriteDoesNotInvalidate) {
  Packet pkt = data_packet();
  set_ttl(pkt, static_cast<std::uint8_t>(EventType::kDrop));
  EXPECT_TRUE(verify_icrc(pkt));
  EXPECT_EQ(parse_roce(pkt)->ttl, static_cast<std::uint8_t>(EventType::kDrop));
}

TEST(Icrc, MacRewritesDoNotInvalidate) {
  Packet pkt = data_packet();
  set_src_mac(pkt, 123456);          // mirror sequence number
  set_dst_mac(pkt, 0x123456789abc);  // switch timestamp
  EXPECT_TRUE(verify_icrc(pkt));
  EXPECT_EQ(parse_roce(pkt)->eth_src.to_u48(), 123456u);
}

TEST(Icrc, UdpPortRewriteDoesNotInvalidate) {
  // UDP ports are covered only via the masked checksum; rewriting the
  // destination port (the RSS trick) keeps the iCRC valid in this model's
  // masking, matching why the dumper can restore it later.
  Packet pkt = data_packet();
  set_udp_dst_port(pkt, 31337);
  EXPECT_EQ(parse_roce(pkt)->udp_dst_port, 31337);
  set_udp_dst_port(pkt, kRoceUdpPort);
  EXPECT_TRUE(verify_icrc(pkt));
}

TEST(Icrc, MigReqRewriteRecomputesTrailer) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kSendOnly;
  spec.payload_len = 512;
  spec.mig_req = false;  // E810-style sender
  Packet pkt = build_roce_packet(spec);
  set_mig_req(pkt, true);
  EXPECT_TRUE(parse_roce(pkt)->bth.mig_req);
  EXPECT_TRUE(verify_icrc(pkt));  // trailer was recomputed
}

TEST(Icrc, CorruptionIsDetected) {
  Packet pkt = data_packet();
  corrupt_payload_bit(pkt, 100);
  EXPECT_FALSE(verify_icrc(pkt));
  // Headers stay parseable (only payload flipped).
  EXPECT_TRUE(parse_roce(pkt).has_value());
}

TEST(Icrc, CorruptionOnZeroPayloadFallsBackToHeaderByte) {
  RocePacketSpec spec = base_spec();
  spec.opcode = IbOpcode::kAcknowledge;
  spec.aeth = Aeth::ack(1);
  Packet pkt = build_roce_packet(spec);
  corrupt_payload_bit(pkt);
  EXPECT_FALSE(verify_icrc(pkt));
}

TEST(Icrc, Crc32MatchesKnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 reflected).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xcbf43926u);
}

TEST(Icrc, RandomPayloadBitflipAlwaysDetected) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    Packet pkt = data_packet();
    corrupt_payload_bit(pkt, rng.next_below(1024 * 8));
    EXPECT_FALSE(verify_icrc(pkt)) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// CRC fast path vs the retained references (packet/icrc.h)
// ---------------------------------------------------------------------------

TEST(Icrc, SliceBy8MatchesBitwiseReference) {
  Rng rng(31);
  // Lengths straddle the 8-byte slicing step; offsets shift alignment.
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1500u}) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      std::vector<std::uint8_t> buf(offset + len);
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
      const auto data = std::span<const std::uint8_t>(buf).subspan(offset);
      EXPECT_EQ(crc32(data), crc32_reference(data))
          << "len " << len << " offset " << offset;
    }
  }
}

TEST(Icrc, SegmentedUpdateMatchesOneShot) {
  Rng rng(32);
  std::vector<std::uint8_t> buf(777);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto data = std::span<const std::uint8_t>(buf);
  // Chain updates over uneven chunks — the segmentation compute_icrc uses.
  std::uint32_t state = kCrcInit;
  std::size_t pos = 0;
  for (const std::size_t chunk : {1u, 2u, 3u, 5u, 8u, 13u, 100u}) {
    state = crc32_update(state, data.subspan(pos, chunk));
    pos += chunk;
  }
  state = crc32_update(state, data.subspan(pos));
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Icrc, CombineMatchesConcatenation) {
  Rng rng(33);
  std::vector<std::uint8_t> buf(513);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto data = std::span<const std::uint8_t>(buf);
  const std::uint32_t whole = crc32(data);
  for (const std::size_t split : {0u, 1u, 8u, 100u, 512u, 513u}) {
    const auto a = data.first(split);
    const auto b = data.subspan(split);
    EXPECT_EQ(crc32_combine(crc32(a), crc32(b), b.size()), whole)
        << "split " << split;
  }
}

TEST(Icrc, ZeroAdvanceMatchesExplicitZeros) {
  const std::uint8_t seed_bytes[] = {0xde, 0xad, 0xbe, 0xef};
  const std::uint32_t state = crc32_update(kCrcInit, seed_bytes);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 255u, 4096u}) {
    const std::vector<std::uint8_t> zeros(n, 0);
    EXPECT_EQ(crc32_zero_advance(state, n), crc32_update(state, zeros))
        << "n " << n;
  }
}

TEST(Icrc, CopyFreeComputeMatchesPseudoPacketReference) {
  // Every opcode shape the builder produces, plus trimmed prefixes that cut
  // into the masked-offset range.
  Rng rng(34);
  for (const std::uint32_t payload : {0u, 1u, 64u, 1024u}) {
    RocePacketSpec spec = base_spec();
    spec.opcode = IbOpcode::kWriteOnly;
    spec.reth = Reth{0x5000, 0x77, payload};
    spec.payload_len = payload;
    const Packet pkt = build_roce_packet(spec);
    const auto frame = pkt.span().first(pkt.size() - 4);
    EXPECT_EQ(compute_icrc(frame, off::kIp),
              compute_icrc_reference(frame, off::kIp));
    for (int trial = 0; trial < 8; ++trial) {
      // Cuts may land inside the masked-offset range, but the frame must
      // always reach the IP header (the compute_icrc contract).
      const std::size_t cut = static_cast<std::size_t>(
          rng.next_in(off::kIp, static_cast<std::int64_t>(frame.size())));
      EXPECT_EQ(compute_icrc(frame.first(cut), off::kIp),
                compute_icrc_reference(frame.first(cut), off::kIp))
          << "cut " << cut;
    }
  }
}

TEST(Icrc, IncrementalMigReqPatchEqualsRebuild) {
  for (const bool initial : {false, true}) {
    RocePacketSpec spec = base_spec();
    spec.opcode = IbOpcode::kSendOnly;
    spec.payload_len = 700;
    spec.mig_req = initial;
    Packet pkt = build_roce_packet(spec);
    set_mig_req(pkt, !initial);  // O(log n) trailer patch
    RocePacketSpec flipped = spec;
    flipped.mig_req = !initial;
    EXPECT_EQ(pkt.bytes, build_roce_packet(flipped).bytes);
    set_mig_req(pkt, initial);  // and back
    EXPECT_EQ(pkt.bytes, build_roce_packet(spec).bytes);
  }
}

TEST(Icrc, MigReqPatchPreservesStaleness) {
  // An already-corrupt frame must stay exactly as corrupt across a MigReq
  // rewrite: the incremental patch transports the trailer error verbatim,
  // like a switch's incremental checksum update would.
  Packet pkt = data_packet();
  corrupt_payload_bit(pkt, 9);
  EXPECT_FALSE(verify_icrc(pkt));
  set_mig_req(pkt, false);
  EXPECT_FALSE(verify_icrc(pkt));
  // Undo both changes: the frame must verify again bit-for-bit.
  set_mig_req(pkt, true);
  corrupt_payload_bit(pkt, 9);
  EXPECT_TRUE(verify_icrc(pkt));
}

// ---------------------------------------------------------------------------
// pcap writer
// ---------------------------------------------------------------------------

TEST(PcapWriter, WritesValidHeaderAndRecords) {
  const std::string path = ::testing::TempDir() + "/lumina_test.pcap";
  {
    PcapWriter writer;
    ASSERT_TRUE(writer.open(path));
    writer.write(data_packet(), 1'500'000'123);
    writer.write(data_packet(), 2'000'000'456, /*orig_len=*/4096);
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint8_t header[24];
  ASSERT_EQ(std::fread(header, 1, sizeof(header), f), sizeof(header));
  // Nanosecond-resolution magic, little endian.
  EXPECT_EQ(header[0], 0x4d);
  EXPECT_EQ(header[1], 0x3c);
  EXPECT_EQ(header[2], 0xb2);
  EXPECT_EQ(header[3], 0xa1);
  EXPECT_EQ(header[20], 1);  // LINKTYPE_ETHERNET
  std::uint8_t record[16];
  ASSERT_EQ(std::fread(record, 1, sizeof(record), f), sizeof(record));
  const std::uint32_t ts_sec = record[0] | record[1] << 8;
  const std::uint32_t ts_nsec = static_cast<std::uint32_t>(
      record[4] | record[5] << 8 | record[6] << 16 |
      static_cast<std::uint32_t>(record[7]) << 24);
  EXPECT_EQ(ts_sec, 1u);
  EXPECT_EQ(ts_nsec, 500'000'123u);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(PcapWriter, OpenFailureReturnsFalse) {
  PcapWriter writer;
  EXPECT_FALSE(writer.open("/nonexistent-dir/foo.pcap"));
  EXPECT_FALSE(writer.write(data_packet(), 0));
}

}  // namespace
}  // namespace lumina
