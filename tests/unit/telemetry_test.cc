// Unit tests for the telemetry layer (docs/telemetry.md): histogram bucket
// math, shard merging under concurrent writers, snapshot ordering and
// campaign merging, the bounded trace ring, the JSON reader, and the
// report.json serializer round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/json_lite.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace lumina::telemetry {
namespace {

// -- bucket math ----------------------------------------------------------

TEST(BucketBounds, ExponentialDoublesEachBound) {
  const BucketBounds bounds = BucketBounds::exponential(16, 2.0, 5);
  EXPECT_EQ(bounds.upper, (std::vector<std::int64_t>{16, 32, 64, 128, 256}));
  EXPECT_EQ(bounds.num_buckets(), 6u);  // 5 bounds + overflow
}

TEST(BucketBounds, LinearStepsByWidth) {
  const BucketBounds bounds = BucketBounds::linear(10, 5, 4);
  EXPECT_EQ(bounds.upper, (std::vector<std::int64_t>{10, 15, 20, 25}));
}

TEST(BucketBounds, BucketForUsesInclusiveUpperBounds) {
  const BucketBounds bounds = BucketBounds::exponential(16, 2.0, 3);
  // Bounds {16, 32, 64}: four buckets.
  EXPECT_EQ(bounds.bucket_for(-5), 0u);
  EXPECT_EQ(bounds.bucket_for(0), 0u);
  EXPECT_EQ(bounds.bucket_for(16), 0u);   // inclusive
  EXPECT_EQ(bounds.bucket_for(17), 1u);
  EXPECT_EQ(bounds.bucket_for(32), 1u);
  EXPECT_EQ(bounds.bucket_for(64), 2u);
  EXPECT_EQ(bounds.bucket_for(65), 3u);   // overflow bucket
  EXPECT_EQ(bounds.bucket_for(1 << 30), 3u);
}

// -- counters and gauges --------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeRecordMaxKeepsHighWater) {
  Gauge g;
  g.record_max(10);
  g.record_max(5);
  EXPECT_EQ(g.value(), 10);
  g.record_max(11);
  EXPECT_EQ(g.value(), 11);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

// -- histograms -----------------------------------------------------------

TEST(Histogram, SnapshotMergesObservationsAndStats) {
  Histogram h(BucketBounds::exponential(10, 2.0, 3));  // {10, 20, 40}
  h.observe(5);
  h.observe(15);
  h.observe(15);
  h.observe(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{1, 2, 0, 1}));
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5 + 15 + 15 + 1000);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 1000);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h(BucketBounds::linear(1, 1, 2));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  // Eight threads hammer one histogram; shard collisions (more threads than
  // slots would be needed) must stay exact because shards are atomic.
  Histogram h(BucketBounds::exponential(64, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(t * 100 + i % 100);
    });
  }
  for (auto& w : workers) w.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const auto c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 7 * 100 + 99);
}

// -- registry and snapshots -----------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndSnapshotIsSorted) {
  MetricsRegistry reg;
  Counter& c = reg.counter("b.second");
  EXPECT_EQ(&c, &reg.counter("b.second"));  // same handle on re-resolve
  reg.counter("a.first").inc(7);
  c.inc(2);
  reg.gauge("z.gauge").set(-5);
  reg.histogram("m.hist", BucketBounds::linear(1, 1, 2)).observe(1);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");  // sorted map
  EXPECT_EQ(snap.counters.at("a.first"), 7u);
  EXPECT_EQ(snap.counters.at("b.second"), 2u);
  EXPECT_EQ(snap.gauges.at("z.gauge"), -5);
  EXPECT_EQ(snap.histograms.at("m.hist").count, 1u);
}

TEST(MetricsSnapshot, MergeSumsCountersAndMaxesGauges) {
  MetricsSnapshot a;
  a.counters["shared"] = 3;
  a.counters["only_a"] = 1;
  a.gauges["peak"] = 10;
  MetricsSnapshot b;
  b.counters["shared"] = 4;
  b.gauges["peak"] = 7;

  a.merge(b);
  EXPECT_EQ(a.counters["shared"], 7u);
  EXPECT_EQ(a.counters["only_a"], 1u);
  EXPECT_EQ(a.gauges["peak"], 10);  // max of 10 and 7
}

TEST(MetricsSnapshot, MergeAddsHistogramBucketsWhenBoundsMatch) {
  Histogram h1(BucketBounds::linear(10, 10, 2));
  h1.observe(5);
  h1.observe(25);
  Histogram h2(BucketBounds::linear(10, 10, 2));
  h2.observe(15);

  MetricsSnapshot a;
  a.histograms["h"] = h1.snapshot();
  MetricsSnapshot b;
  b.histograms["h"] = h2.snapshot();
  a.merge(b);

  const HistogramSnapshot& merged = a.histograms["h"];
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(merged.sum, 5 + 25 + 15);
  EXPECT_EQ(merged.min, 5);
  EXPECT_EQ(merged.max, 25);
}

// -- trace ring -----------------------------------------------------------

TEST(TraceSink, RingOverwritesOldestAndCountsDrops) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.instant("cat", "ev", i * 100, kTrackSim, i);
  }
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events_in_order();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().arg, 6);  // oldest retained
  EXPECT_EQ(events.back().arg, 9);
}

TEST(TraceSink, ChromeJsonIsParsableAndCarriesTrackNames) {
  TraceSink sink(16);
  sink.set_track_name(kTrackSim, "sim");
  sink.instant("sim", "tick", 1500, kTrackSim, 3);
  sink.complete("host", "msg", 1000, 2500, kTrackHost, 1);

  const JsonValue doc = parse_json(sink.chrome_json());
  const auto& events = doc.at("traceEvents").as_array();
  // 1 thread_name metadata event + 2 recorded events.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("args").at("name").as_string(), "sim");
  EXPECT_EQ(events[1].at("name").as_string(), "tick");
  // 1500 ns renders as 1.500 us with integer math.
  EXPECT_EQ(events[1].at("ts").as_double(), 1.5);
  EXPECT_EQ(events[2].at("ph").as_string(), "X");
  EXPECT_EQ(events[2].at("dur").as_double(), 2.5);
}

// -- json reader ----------------------------------------------------------

TEST(JsonLite, ParsesScalarsArraysObjects) {
  const JsonValue doc = parse_json(
      R"({"i": -42, "d": 2.5, "s": "a\"b", "b": true, "n": null,
          "arr": [1, 2, 3]})");
  EXPECT_EQ(doc.at("i").as_int(), -42);
  EXPECT_EQ(doc.at("d").as_double(), 2.5);
  EXPECT_EQ(doc.at("s").as_string(), "a\"b");
  EXPECT_TRUE(doc.at("b").as_bool());
  EXPECT_EQ(doc.at("n").kind(), JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("arr").as_array().size(), 3u);
  EXPECT_EQ(doc.at("arr").as_array()[2].as_int(), 3);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonLite, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonError);
  EXPECT_THROW(parse_json("[1, 2,]"), JsonError);
  EXPECT_THROW(parse_json("{} trailing"), JsonError);
}

// -- report round-trip ----------------------------------------------------

RunReport sample_report() {
  RunReport report;
  report.name = "sample";
  report.deterministic.counters["sim.events_processed"] = 123;
  report.deterministic.gauges["sim.queue_depth_max"] = -7;
  Histogram h(BucketBounds::exponential(10, 2.0, 3));
  h.observe(15);
  h.observe(100);
  report.deterministic.histograms["lat_ns"] = h.snapshot();
  report.wall["wall_ms"] = 12.5;
  return report;
}

TEST(Report, SerializeReadRoundTrip) {
  const RunReport report = sample_report();
  const RunReport parsed = read_report_text(serialize_report(report));
  EXPECT_EQ(parsed.name, "sample");
  EXPECT_EQ(parsed.deterministic.counters, report.deterministic.counters);
  EXPECT_EQ(parsed.deterministic.gauges, report.deterministic.gauges);
  const HistogramSnapshot& h = parsed.deterministic.histograms.at("lat_ns");
  const HistogramSnapshot& expect =
      report.deterministic.histograms.at("lat_ns");
  EXPECT_EQ(h.bounds, expect.bounds);
  EXPECT_EQ(h.counts, expect.counts);
  EXPECT_EQ(h.count, expect.count);
  EXPECT_EQ(h.sum, expect.sum);
  EXPECT_EQ(h.min, expect.min);
  EXPECT_EQ(h.max, expect.max);
  EXPECT_DOUBLE_EQ(parsed.wall.at("wall_ms"), 12.5);
}

TEST(Report, ExtractDeterministicSectionMatchesSerializer) {
  const RunReport report = sample_report();
  const std::string text = serialize_report(report);
  const std::string section = extract_deterministic_section(text);
  EXPECT_EQ(section, serialize_deterministic(report.deterministic));
  EXPECT_NE(text.find(section), std::string::npos);
  EXPECT_EQ(extract_deterministic_section("{}"), "");
}

TEST(Report, DeterministicSectionIgnoresWallChanges) {
  RunReport a = sample_report();
  RunReport b = sample_report();
  b.wall["wall_ms"] = 9999.0;
  b.name = "other";
  EXPECT_NE(serialize_report(a), serialize_report(b));
  EXPECT_EQ(extract_deterministic_section(serialize_report(a)),
            extract_deterministic_section(serialize_report(b)));
}

TEST(Report, RejectsUnknownSchema) {
  EXPECT_THROW(
      read_report_text(R"({"schema": "other.v9", "name": "x",
                           "deterministic": {"counters": {}, "gauges": {},
                                             "histograms": {}},
                           "wall": {}})"),
      JsonError);
}

}  // namespace
}  // namespace lumina::telemetry
