// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lumina {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTickEventsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Tick inner_fire_time = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fire_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fire_time, 150);
}

TEST(Simulator, PastDeadlinesClampToNow) {
  Simulator sim;
  Tick fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  Tick fired_at = -1;
  sim.schedule_after(-5, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(12345);
  bool fired = false;
  sim.schedule_at(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventDoesNotBlockOthersAtSameTick) {
  Simulator sim;
  std::vector<int> order;
  const auto id = sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Tick> fired;
  for (Tick t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(50);
  EXPECT_EQ(fired.size(), 5u);  // 10..50 inclusive
  EXPECT_EQ(sim.now(), 50);
  sim.run();  // the rest still fire afterwards
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineEvenWhenIdle) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(3, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  sim.run();  // resumable
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, SelfReschedulingChainTerminates) {
  Simulator sim;
  int remaining = 1000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) sim.schedule_after(7, tick);
  };
  sim.schedule_after(0, tick);
  sim.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(sim.now(), 999 * 7);
  EXPECT_EQ(sim.events_processed(), 1000u);
}

TEST(Simulator, PendingEventsAccountsForCancellations) {
  Simulator sim;
  const auto a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

/// Cancelling an id whose event already fired must be a true no-op: it
/// neither disturbs later events nor corrupts the pending count. (The old
/// heap scheduler tombstoned such ids forever; the liveness table must not
/// regress this into resurrecting or double-freeing the slot.)
TEST(Simulator, CancelOfAlreadyFiredEventIsNoOp) {
  Simulator sim;
  int fired = 0;
  const auto a = sim.schedule_at(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);

  sim.cancel(a);  // already fired: nothing to cancel
  sim.cancel(a);  // idempotent
  EXPECT_EQ(sim.pending_events(), 0u);

  // Later events are unaffected by the stale cancel.
  sim.schedule_at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_processed(), 2u);
}

/// Determinism: two identical schedules must produce identical execution
/// orders — the foundation of Lumina's reproducible tests.
TEST(Simulator, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at((i * 37) % 50, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

class SimulatorLoadTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorLoadTest, ProcessesAllScheduledEvents) {
  const int n = GetParam();
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < n; ++i) {
    sim.schedule_at((i * 7919) % 1000, [&fired] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, n);
  EXPECT_EQ(sim.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Load, SimulatorLoadTest,
                         ::testing::Values(1, 10, 1000, 50000));

}  // namespace
}  // namespace lumina
