// Unit tests for the report comparison oracle behind tools/report_diff and
// the CI bench gate: pass/fail classification, the exact tolerance
// boundary, per-metric prefix overrides, and missing-metric handling.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"

namespace lumina::telemetry {
namespace {

RunReport report_with_counter(const std::string& name, std::uint64_t value) {
  RunReport report;
  report.name = "r";
  report.deterministic.counters[name] = value;
  return report;
}

TEST(ReportDiff, IdenticalReportsPass) {
  const RunReport a = report_with_counter("m", 100);
  const DiffResult result = diff_reports(a, a, DiffOptions{});
  EXPECT_TRUE(result.passed());
  EXPECT_TRUE(result.diffs.empty());
  EXPECT_EQ(result.compared, 1u);
}

TEST(ReportDiff, ZeroToleranceFailsAnyChange) {
  const RunReport a = report_with_counter("m", 100);
  const RunReport b = report_with_counter("m", 101);
  const DiffResult result = diff_reports(a, b, DiffOptions{});
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.diffs.size(), 1u);
  EXPECT_EQ(result.diffs[0].metric, "counters/m");
}

TEST(ReportDiff, ToleranceBoundaryIsInclusive) {
  // 100 -> 125: relative = 25 / 125 = 0.2 exactly.
  const RunReport a = report_with_counter("m", 100);
  const RunReport b = report_with_counter("m", 125);

  DiffOptions at_boundary;
  at_boundary.tolerance = 0.2;
  EXPECT_TRUE(diff_reports(a, b, at_boundary).passed());

  DiffOptions below;
  below.tolerance = 0.199;
  const DiffResult failed = diff_reports(a, b, below);
  EXPECT_FALSE(failed.passed());
  ASSERT_EQ(failed.diffs.size(), 1u);
  EXPECT_NEAR(failed.diffs[0].relative, 0.2, 1e-12);
}

TEST(ReportDiff, WallSectionIsNeverCompared) {
  RunReport a = report_with_counter("m", 100);
  RunReport b = report_with_counter("m", 100);
  a.wall["wall_ms"] = 1.0;
  b.wall["wall_ms"] = 100000.0;
  EXPECT_TRUE(diff_reports(a, b, DiffOptions{}).passed());
}

TEST(ReportDiff, PerMetricOverrideLoosensOneSubsystem) {
  RunReport a;
  a.deterministic.counters["noisy.m"] = 100;
  a.deterministic.counters["stable.m"] = 100;
  RunReport b;
  b.deterministic.counters["noisy.m"] = 150;   // rel 0.333
  b.deterministic.counters["stable.m"] = 150;  // rel 0.333

  DiffOptions options;
  options.tolerance = 0.01;
  options.per_metric["noisy."] = 0.5;  // bare-name prefix
  const DiffResult result = diff_reports(a, b, options);
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.diffs.size(), 2u);
  EXPECT_EQ(result.failures(), 1u);
  for (const auto& d : result.diffs) {
    EXPECT_EQ(d.failed, d.metric == "counters/stable.m") << d.metric;
  }
}

TEST(ReportDiff, LongestPrefixOverrideWins) {
  DiffOptions options;
  options.tolerance = 0.1;
  options.per_metric["rnic."] = 0.5;
  options.per_metric["rnic.requester."] = 0.0;
  EXPECT_DOUBLE_EQ(tolerance_for(options, "counters/rnic.responder.x"), 0.5);
  EXPECT_DOUBLE_EQ(tolerance_for(options, "counters/rnic.requester.x"), 0.0);
  EXPECT_DOUBLE_EQ(tolerance_for(options, "counters/host.x"), 0.1);
}

TEST(ReportDiff, MissingMetricFailsUnlessAllowed) {
  const RunReport a = report_with_counter("m", 100);
  const RunReport b;  // empty candidate
  EXPECT_FALSE(diff_reports(a, b, DiffOptions{}).passed());

  DiffOptions allow;
  allow.allow_missing = true;
  const DiffResult result = diff_reports(a, b, allow);
  EXPECT_TRUE(result.passed());
  ASSERT_EQ(result.diffs.size(), 1u);  // still reported, just not fatal
  EXPECT_EQ(result.diffs[0].detail, "only in baseline");
}

TEST(ReportDiff, KernelShapeMetricPredicate) {
  EXPECT_TRUE(is_kernel_shape_metric("sim.queue_depth_max"));
  EXPECT_TRUE(is_kernel_shape_metric("gauges/sim.queue_depth_max"));
  EXPECT_TRUE(is_kernel_shape_metric("sim.queue_depth_shard3"));
  EXPECT_FALSE(is_kernel_shape_metric("sim.events_processed"));
  EXPECT_FALSE(is_kernel_shape_metric("counters/injector.roce_rx"));
}

TEST(ReportDiff, IgnoreKernelShapeSkipsQueueDepthGauges) {
  RunReport a = report_with_counter("m", 100);
  RunReport b = report_with_counter("m", 100);
  // The cross-kernel situation: same semantics, different scheduler-queue
  // high-water because the kernels account for the queue differently.
  a.deterministic.gauges["sim.queue_depth_max"] = 7;
  b.deterministic.gauges["sim.queue_depth_max"] = 31;

  const DiffResult strict = diff_reports(a, b, DiffOptions{});
  EXPECT_FALSE(strict.passed());

  DiffOptions options;
  options.ignore_kernel_shape = true;
  const DiffResult relaxed = diff_reports(a, b, options);
  EXPECT_TRUE(relaxed.passed());
  // The skipped gauge is not even counted as compared.
  EXPECT_EQ(relaxed.compared, 1u);

  // A semantic regression still fails with the flag set.
  b.deterministic.counters["m"] = 101;
  EXPECT_FALSE(diff_reports(a, b, options).passed());
}

TEST(ReportDiff, HistogramBucketShiftFailsDespiteStableTotal) {
  // One observation migrates buckets; count/sum totals barely move but the
  // per-bucket comparison must notice.
  Histogram ha(BucketBounds::linear(10, 10, 2));
  ha.observe(5);
  ha.observe(5);
  Histogram hb(BucketBounds::linear(10, 10, 2));
  hb.observe(5);
  hb.observe(15);

  RunReport a;
  a.deterministic.histograms["h"] = ha.snapshot();
  RunReport b;
  b.deterministic.histograms["h"] = hb.snapshot();

  DiffOptions options;
  options.tolerance = 0.45;  // sum moved 10->20 under 0.5... still compare
  const DiffResult result = diff_reports(a, b, options);
  EXPECT_FALSE(result.passed());
  bool bucket_failed = false;
  for (const auto& d : result.diffs) {
    if (d.failed && d.metric.find("/bucket") != std::string::npos) {
      bucket_failed = true;
    }
  }
  EXPECT_TRUE(bucket_failed);
}

TEST(ReportDiff, MismatchedHistogramBoundsFail) {
  Histogram ha(BucketBounds::linear(10, 10, 2));
  Histogram hb(BucketBounds::linear(10, 10, 3));
  RunReport a;
  a.deterministic.histograms["h"] = ha.snapshot();
  RunReport b;
  b.deterministic.histograms["h"] = hb.snapshot();
  DiffOptions loose;
  loose.tolerance = 100.0;
  const DiffResult result = diff_reports(a, b, loose);
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.diffs.size(), 1u);
  EXPECT_EQ(result.diffs[0].detail, "bucket bounds differ");
}

TEST(ReportDiff, FormatDiffNamesFailures) {
  const RunReport a = report_with_counter("m", 100);
  const RunReport b = report_with_counter("m", 200);
  const std::string text = format_diff(diff_reports(a, b, DiffOptions{}));
  EXPECT_NE(text.find("FAIL counters/m"), std::string::npos);
  EXPECT_NE(text.find("1 outside tolerance"), std::string::npos);
}

}  // namespace
}  // namespace lumina::telemetry
