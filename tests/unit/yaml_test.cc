// Unit tests for the YAML-subset parser (config/yaml_lite).
#include <gtest/gtest.h>

#include "config/yaml_lite.h"

namespace lumina {
namespace {

TEST(Yaml, EmptyDocumentIsNull) {
  EXPECT_TRUE(parse_yaml("").is_null());
  EXPECT_TRUE(parse_yaml("   \n# only a comment\n").is_null());
}

TEST(Yaml, ScalarTypes) {
  const YamlNode root = parse_yaml(
      "int: 42\n"
      "neg: -7\n"
      "float: 3.25\n"
      "t1: true\n"
      "t2: True\n"
      "f1: false\n"
      "f2: False\n"
      "text: hello world\n"
      "quoted: \"a: b, c\"\n");
  EXPECT_EQ(root["int"].as_int(), 42);
  EXPECT_EQ(root["neg"].as_int(), -7);
  EXPECT_DOUBLE_EQ(root["float"].as_double(), 3.25);
  EXPECT_TRUE(root["t1"].as_bool());
  EXPECT_TRUE(root["t2"].as_bool());
  EXPECT_FALSE(root["f1"].as_bool());
  EXPECT_FALSE(root["f2"].as_bool());
  EXPECT_EQ(root["text"].as_string(), "hello world");
  EXPECT_EQ(root["quoted"].as_string(), "a: b, c");
}

TEST(Yaml, TypeMismatchThrows) {
  const YamlNode root = parse_yaml("key: banana\n");
  EXPECT_THROW(root["key"].as_int(), YamlError);
  EXPECT_THROW(root["key"].as_bool(), YamlError);
  EXPECT_THROW(root["key"].as_double(), YamlError);
  EXPECT_NO_THROW(root["key"].as_string());
}

TEST(Yaml, MissingKeysAreNullAndDefaultable) {
  const YamlNode root = parse_yaml("a: 1\n");
  EXPECT_TRUE(root["missing"].is_null());
  EXPECT_EQ(root["missing"].as_int_or(99), 99);
  EXPECT_EQ(root["missing"].as_string_or("dflt"), "dflt");
  EXPECT_TRUE(root["missing"].as_bool_or(true));
  EXPECT_DOUBLE_EQ(root["missing"].as_double_or(2.5), 2.5);
  EXPECT_EQ(root["a"].as_int_or(99), 1);
}

TEST(Yaml, NestedBlocks) {
  const YamlNode root = parse_yaml(
      "outer:\n"
      "  inner:\n"
      "    deep: 3\n"
      "  sibling: x\n"
      "next: 1\n");
  EXPECT_EQ(root["outer"]["inner"]["deep"].as_int(), 3);
  EXPECT_EQ(root["outer"]["sibling"].as_string(), "x");
  EXPECT_EQ(root["next"].as_int(), 1);
}

TEST(Yaml, FlowLists) {
  const YamlNode root = parse_yaml("ips: [10.0.0.2/24, 10.0.0.12/24]\n");
  const YamlNode& ips = root["ips"];
  ASSERT_TRUE(ips.is_list());
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_EQ(ips[0].as_string(), "10.0.0.2/24");
  EXPECT_EQ(ips[1].as_string(), "10.0.0.12/24");
  EXPECT_TRUE(ips[5].is_null());  // out of range -> null
}

TEST(Yaml, EmptyFlowContainers) {
  const YamlNode root = parse_yaml("l: []\nm: {}\n");
  EXPECT_TRUE(root["l"].is_list());
  EXPECT_EQ(root["l"].size(), 0u);
  EXPECT_TRUE(root["m"].is_map());
  EXPECT_EQ(root["m"].size(), 0u);
}

TEST(Yaml, FlowMaps) {
  const YamlNode root =
      parse_yaml("ev: {qpn: 1, psn: 4, type: ecn, iter: 1}\n");
  const YamlNode& ev = root["ev"];
  ASSERT_TRUE(ev.is_map());
  EXPECT_EQ(ev["qpn"].as_int(), 1);
  EXPECT_EQ(ev["psn"].as_int(), 4);
  EXPECT_EQ(ev["type"].as_string(), "ecn");
  EXPECT_EQ(ev["iter"].as_int(), 1);
}

TEST(Yaml, BlockListAtParentIndent) {
  // Listing 2 style: "- ..." items at the same indentation as the key.
  const YamlNode root = parse_yaml(
      "data-pkt-events:\n"
      "- {qpn: 1, psn: 4, type: ecn, iter: 1}\n"
      "- {qpn: 2, psn: 5, type: drop, iter: 1}\n");
  const YamlNode& events = root["data-pkt-events"];
  ASSERT_TRUE(events.is_list());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1]["type"].as_string(), "drop");
}

TEST(Yaml, BlockListIndented) {
  const YamlNode root = parse_yaml(
      "items:\n"
      "  - 1\n"
      "  - 2\n"
      "  - 3\n");
  ASSERT_EQ(root["items"].size(), 3u);
  EXPECT_EQ(root["items"][2].as_int(), 3);
}

TEST(Yaml, InlineMapListItems) {
  const YamlNode root = parse_yaml(
      "rules:\n"
      "- name: a\n"
      "  value: 1\n"
      "- name: b\n"
      "  value: 2\n");
  ASSERT_EQ(root["rules"].size(), 2u);
  EXPECT_EQ(root["rules"][0]["name"].as_string(), "a");
  EXPECT_EQ(root["rules"][1]["value"].as_int(), 2);
}

TEST(Yaml, CommentsStripped) {
  const YamlNode root = parse_yaml(
      "# leading comment\n"
      "a: 1  # trailing comment\n"
      "url: http://x#y\n");  // '#' not preceded by space: kept
  EXPECT_EQ(root["a"].as_int(), 1);
  EXPECT_EQ(root["url"].as_string(), "http://x#y");
}

TEST(Yaml, MapEntriesPreserveOrder) {
  const YamlNode root = parse_yaml("b: 1\na: 2\nc: 3\n");
  const auto& entries = root.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "b");
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_EQ(entries[2].first, "c");
}

TEST(Yaml, DuplicateKeyOverwrites) {
  const YamlNode root = parse_yaml("a: 1\na: 2\n");
  EXPECT_EQ(root["a"].as_int(), 2);
  EXPECT_EQ(root.size(), 1u);
}

TEST(Yaml, ParsesListing1Verbatim) {
  // The paper's host configuration snippet, as printed.
  const YamlNode root = parse_yaml(R"(requester:
  workspace: /home/foo/bar/
  control-ip: cx4-testing-traffic-requester
  nic:
    type: cx4
    if-name: enp4s0
    switch-port: 144
    ip-list: [10.0.0.2/24,10.0.0.12/24]
  roce-parameters:
    dcqcn-rp-enable: False
    dcqcn-np-enable: True
    min-time-between-cnps: 0
    adaptive-retrans: False
    slow-restart: True
)");
  const YamlNode& req = root["requester"];
  EXPECT_EQ(req["workspace"].as_string(), "/home/foo/bar/");
  EXPECT_EQ(req["nic"]["type"].as_string(), "cx4");
  EXPECT_EQ(req["nic"]["switch-port"].as_int(), 144);
  EXPECT_EQ(req["nic"]["ip-list"].size(), 2u);
  EXPECT_FALSE(req["roce-parameters"]["dcqcn-rp-enable"].as_bool());
  EXPECT_TRUE(req["roce-parameters"]["slow-restart"].as_bool());
}

TEST(Yaml, ParsesListing2Verbatim) {
  const YamlNode root = parse_yaml(R"(traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 10
  mtu: 1024
  message-size: 10240
  multi-gid: true
  barrier-sync: true
  tx-depth: 1
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:
  # Mark ECN on the 4th pkt of the 1st QP conn
  - {qpn: 1, psn: 4, type: ecn, iter: 1}
  # Drop the 5th pkt of the 2nd QP conn
  - {qpn: 2, psn: 5, type: drop, iter: 1}
  # Drop the retransmitted 5th pkt of the 2nd QP conn
  - {qpn: 2, psn: 5, type: drop, iter: 2}
)");
  const YamlNode& traffic = root["traffic"];
  EXPECT_EQ(traffic["num-connections"].as_int(), 2);
  EXPECT_EQ(traffic["rdma-verb"].as_string(), "write");
  EXPECT_TRUE(traffic["multi-gid"].as_bool());
  const YamlNode& events = traffic["data-pkt-events"];
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2]["iter"].as_int(), 2);
  EXPECT_EQ(events[2]["type"].as_string(), "drop");
}

TEST(Yaml, ErrorsCarryLineNumbers) {
  try {
    parse_yaml("ok: 1\nbroken here\n");
    FAIL() << "expected YamlError";
  } catch (const YamlError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(Yaml, RejectsTabs) {
  EXPECT_THROW(parse_yaml("a:\n\tb: 1\n"), YamlError);
}

TEST(Yaml, RejectsUnterminatedFlow) {
  EXPECT_THROW(parse_yaml("a: [1, 2\n"), YamlError);
  EXPECT_THROW(parse_yaml("a: {x: 1\n"), YamlError);
  EXPECT_THROW(parse_yaml("a: \"unterminated\n"), YamlError);
}

TEST(Yaml, NestedFlowContainers) {
  const YamlNode root = parse_yaml("a: [[1, 2], {k: [3]}]\n");
  ASSERT_EQ(root["a"].size(), 2u);
  EXPECT_EQ(root["a"][0][1].as_int(), 2);
  EXPECT_EQ(root["a"][1]["k"][0].as_int(), 3);
}

TEST(Yaml, FileNotFoundThrows) {
  EXPECT_THROW(parse_yaml_file("/no/such/file.yaml"), YamlError);
}

TEST(Yaml, NestedBlocksInsideListItems) {
  // Campaign files nest whole experiment configs inside "- kind:" items.
  const YamlNode root = parse_yaml(R"(runs:
  - kind: experiment
    sweep:
      message-size: [4096, 10240]
    config:
      traffic:
        num-connections: 2
        data-pkt-events:
        - {qpn: 1, psn: 3, type: drop, iter: 1}
  - kind: suite
    nics: [cx4, e810]
)");
  const YamlNode& runs = root["runs"];
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0]["kind"].as_string(), "experiment");
  EXPECT_EQ(runs[0]["sweep"]["message-size"][1].as_int(), 10240);
  const YamlNode& traffic = runs[0]["config"]["traffic"];
  EXPECT_EQ(traffic["num-connections"].as_int(), 2);
  ASSERT_EQ(traffic["data-pkt-events"].size(), 1u);
  EXPECT_EQ(traffic["data-pkt-events"][0]["psn"].as_int(), 3);
  EXPECT_EQ(runs[1]["kind"].as_string(), "suite");
  EXPECT_EQ(runs[1]["nics"][1].as_string(), "e810");
}

TEST(Yaml, ListItemKeyWithoutValueIsNull) {
  const YamlNode root = parse_yaml("runs:\n  - kind: x\n    extra:\n");
  EXPECT_TRUE(root["runs"][0]["extra"].is_null());
}

}  // namespace
}  // namespace lumina
