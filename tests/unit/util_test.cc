// Unit tests for util: time formatting, deterministic PRNG, statistics.
#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/stats.h"
#include "util/time.h"

namespace lumina {
namespace {

using namespace time_literals;

TEST(Time, LiteralsAndConstants) {
  EXPECT_EQ(1_us, kMicrosecond);
  EXPECT_EQ(1_ms, kMillisecond);
  EXPECT_EQ(1_s, kSecond);
  EXPECT_EQ(4096_ns, 4096);
  EXPECT_EQ(3_us, 3000);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_s(3 * kSecond), 3.0);
}

TEST(Time, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration(999), "999ns");
  EXPECT_EQ(format_duration(1500), "1.50us");
  EXPECT_EQ(format_duration(2'500'000), "2.500ms");
  EXPECT_EQ(format_duration(4 * kSecond), "4.0000s");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 10);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 25000, 1000);
}

TEST(SampleStats, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(SampleStats, BasicMoments) {
  SampleStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(SampleStats, PercentilesInterpolate) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(i);
  EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100), 100.0);
  EXPECT_NEAR(stats.median(), 50.5, 0.01);
  EXPECT_NEAR(stats.percentile(99), 99.01, 0.01);
}

TEST(SampleStats, SingleSample) {
  SampleStats stats;
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.median(), 42.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

}  // namespace
}  // namespace lumina
