// Unit tests for the event-injector switch: ITER tracking (Fig. 3), the
// match-action event table, metadata embedding (§3.4), weighted
// round-robin mirroring, and the data-plane pipeline.
#include <gtest/gtest.h>

#include <map>

#include "injector/event_table.h"
#include "injector/fault_models.h"
#include "orchestrator/orchestrator.h"
#include "packet/pfc.h"
#include "telemetry/report.h"
#include "util/random.h"
#include "injector/mirror.h"
#include "injector/switch.h"

namespace lumina {
namespace {

const FlowKey kFlow{Ipv4Address::from_octets(10, 0, 0, 1),
                    Ipv4Address::from_octets(10, 0, 0, 2), 0xea};

// ---------------------------------------------------------------------------
// IterTracker — the Fig. 3 walkthrough and beyond
// ---------------------------------------------------------------------------

TEST(IterTracker, Figure3Walkthrough) {
  // Packets: 1 2 3 4 | 2 3 4 | 3 4   (drop 2 in round 1, 3 in round 2)
  IterTracker tracker;
  tracker.register_flow(kFlow, 1);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {1, 1}, {2, 1}, {3, 1}, {4, 1},  // first round
      {2, 2}, {3, 2}, {4, 2},          // retransmission round 2
      {3, 3}, {4, 3},                  // retransmission round 3
  };
  for (const auto& [psn, iter] : expected) {
    EXPECT_EQ(tracker.observe(kFlow, psn), iter) << "psn " << psn;
  }
}

TEST(IterTracker, EqualPsnStartsNewRound) {
  IterTracker tracker;
  tracker.register_flow(kFlow, 10);
  EXPECT_EQ(tracker.observe(kFlow, 10), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 10), 2u);  // PSN == last -> new round
  EXPECT_EQ(tracker.observe(kFlow, 10), 3u);
}

TEST(IterTracker, FirstPacketOfRegisteredFlowIsRoundOne) {
  // last-PSN initializes to IPSN-1 so the first packet stays in round 1.
  IterTracker tracker;
  tracker.register_flow(kFlow, 1000);
  EXPECT_EQ(tracker.observe(kFlow, 1000), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 1001), 1u);
}

TEST(IterTracker, StatefulDiscoveryFallback) {
  // Unregistered flows are discovered on first sight (ablation mode).
  IterTracker tracker;
  EXPECT_EQ(tracker.observe(kFlow, 500), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 501), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 500), 2u);
  EXPECT_EQ(tracker.tracked_flows(), 1u);
}

TEST(IterTracker, FlowsAreIndependent) {
  IterTracker tracker;
  FlowKey other = kFlow;
  other.dst_qpn = 0xfe;
  tracker.register_flow(kFlow, 1);
  tracker.register_flow(other, 1);
  tracker.observe(kFlow, 1);
  tracker.observe(kFlow, 1);  // flow A now round 2
  EXPECT_EQ(tracker.iter(kFlow), 2u);
  EXPECT_EQ(tracker.iter(other), 1u);
}

TEST(IterTracker, HandlesPsnWrap) {
  IterTracker tracker;
  tracker.register_flow(kFlow, 0xfffffe);
  EXPECT_EQ(tracker.observe(kFlow, 0xfffffe), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 0xffffff), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 0x000000), 1u);  // wrap is forward
  EXPECT_EQ(tracker.observe(kFlow, 0xffffff), 2u);  // going back: new round
}

/// Property: ITER computed by the tracker matches a reference model that
/// replays the same PSN sequence.
class IterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IterPropertyTest, MatchesReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  IterTracker tracker;
  tracker.register_flow(kFlow, 100);
  std::uint32_t last = 99;
  std::uint32_t ref_iter = 1;
  std::uint32_t psn = 100;
  for (int i = 0; i < 500; ++i) {
    // Random walk: mostly forward, occasional rewinds (retransmissions).
    if (rng.next_bool(0.15)) {
      psn = psn_add(psn, -static_cast<std::int64_t>(rng.next_below(5)) - 1);
    } else {
      psn = psn_add(psn, 1);
    }
    if (!psn_gt(psn, last)) ++ref_iter;
    last = psn;
    EXPECT_EQ(tracker.observe(kFlow, psn), ref_iter) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 42));

// ---------------------------------------------------------------------------
// EventTable
// ---------------------------------------------------------------------------

TEST(EventTable, ExactMatchAndConsumption) {
  EventTable table;
  table.install(EventRule{kFlow, 1004, 1, EventType::kEcn});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.match(kFlow, 1003, 1).has_value());
  EXPECT_FALSE(table.match(kFlow, 1004, 2).has_value());
  FlowKey other = kFlow;
  other.dst_qpn = 0x1;
  EXPECT_FALSE(table.match(other, 1004, 1).has_value());
  const auto hit = table.match(kFlow, 1004, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->type, EventType::kEcn);
  // Single-shot: the rule is consumed.
  EXPECT_FALSE(table.match(kFlow, 1004, 1).has_value());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.hits(), 1u);
}

TEST(EventTable, PeekDoesNotConsume) {
  EventTable table;
  table.install(EventRule{kFlow, 7, 1, EventType::kDrop});
  EXPECT_TRUE(table.peek(kFlow, 7, 1).has_value());
  EXPECT_TRUE(table.peek(kFlow, 7, 1).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(EventTable, SameKeyDifferentIter) {
  EventTable table;
  table.install(EventRule{kFlow, 5, 1, EventType::kDrop});
  table.install(EventRule{kFlow, 5, 2, EventType::kDrop});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.match(kFlow, 5, 2).has_value());
  EXPECT_TRUE(table.match(kFlow, 5, 1).has_value());
}

TEST(EventTable, PaperScaleCapacity) {
  // §5: ~100K events for 10K connections fit in ~1 MB of table memory.
  EventTable table;
  for (std::uint32_t c = 0; c < 10'000; ++c) {
    FlowKey flow = kFlow;
    flow.dst_qpn = c;
    for (std::uint32_t e = 0; e < 10; ++e) {
      table.install(EventRule{flow, 1000 + e, 1, EventType::kDrop});
    }
  }
  EXPECT_EQ(table.size(), 100'000u);
  FlowKey probe = kFlow;
  probe.dst_qpn = 9'999;
  EXPECT_TRUE(table.match(probe, 1009, 1).has_value());
}

// ---------------------------------------------------------------------------
// MirrorEngine — metadata embedding + WRR
// ---------------------------------------------------------------------------

Packet sample_packet() {
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, 512};
  spec.payload_len = 512;
  spec.dest_qpn = kFlow.dst_qpn;
  spec.psn = 42;
  return build_roce_packet(spec);
}

TEST(MirrorEngine, EmbedsAndExtractsMetadata) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  const auto mirrored = engine.mirror(sample_packet(), EventType::kDrop,
                                      123'456'789);
  const MirrorMeta meta = extract_mirror_meta(mirrored.clone);
  EXPECT_EQ(meta.mirror_seq, 0u);
  EXPECT_EQ(meta.ingress_timestamp, 123'456'789);
  EXPECT_EQ(meta.event, EventType::kDrop);

  const auto second = engine.mirror(sample_packet(), EventType::kNone, 99);
  EXPECT_EQ(extract_mirror_meta(second.clone).mirror_seq, 1u);
  EXPECT_EQ(engine.mirrored_count(), 2u);
}

TEST(MirrorEngine, CloneStillParsesAndOriginalUntouched) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  const Packet original = sample_packet();
  const auto mirrored = engine.mirror(original, EventType::kEcn, 5);
  const auto view = parse_roce(mirrored.clone);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bth.psn, 42u);
  EXPECT_NE(view->udp_dst_port, kRoceUdpPort);  // randomized for RSS
  // Restoration brings the clone back to a proper RoCE packet.
  Packet restored = mirrored.clone;
  restore_roce_udp_port(restored);
  EXPECT_EQ(parse_roce(restored)->udp_dst_port, kRoceUdpPort);
  // The original was cloned, not mutated.
  EXPECT_EQ(parse_roce(original)->udp_dst_port, kRoceUdpPort);
  EXPECT_EQ(parse_roce(original)->ttl, 64);
}

TEST(MirrorEngine, RandomizationCanBeDisabled) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  engine.set_randomize_udp_port(false);
  const auto mirrored = engine.mirror(sample_packet(), EventType::kNone, 0);
  EXPECT_EQ(parse_roce(mirrored.clone)->udp_dst_port, kRoceUdpPort);
}

TEST(MirrorEngine, WrrHonorsWeights) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}, {3, 3}});
  std::map<int, int> counts;
  for (int i = 0; i < 4000; ++i) {
    ++counts[engine.mirror(sample_packet(), EventType::kNone, 0).port_index];
  }
  EXPECT_EQ(counts[2], 1000);
  EXPECT_EQ(counts[3], 3000);
}

TEST(MirrorEngine, EqualWeightsAlternate) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}, {3, 1}});
  std::map<int, int> counts;
  for (int i = 0; i < 100; ++i) {
    ++counts[engine.mirror(sample_packet(), EventType::kNone, 0).port_index];
  }
  EXPECT_EQ(counts[2], 50);
  EXPECT_EQ(counts[3], 50);
}

// ---------------------------------------------------------------------------
// The switch data plane
// ---------------------------------------------------------------------------

class CaptureNode : public Node {
 public:
  CaptureNode(Simulator* sim, std::string name)
      : name_(std::move(name)), port_(sim, this, 0) {}
  void handle_packet(int, Packet pkt) override {
    packets.push_back(std::move(pkt));
  }
  std::string name() const override { return name_; }
  Port& port() { return port_; }
  std::vector<Packet> packets;

 private:
  std::string name_;
  Port port_;
};

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : sw(&sim, 4, EventInjectorSwitch::Options{}),
        host_a(&sim, "host-a"),
        host_b(&sim, "host-b"),
        dumper(&sim, "dumper") {
    connect(host_a.port(), sw.port(0), LinkParams{100.0, 10});
    connect(host_b.port(), sw.port(1), LinkParams{100.0, 10});
    connect(dumper.port(), sw.port(2), LinkParams{100.0, 10});
    sw.add_route(kFlow.src_ip, 0);
    sw.add_route(kFlow.dst_ip, 1);
    sw.set_mirror_targets({{2, 1}});
  }

  Simulator sim;
  EventInjectorSwitch sw;
  CaptureNode host_a;
  CaptureNode host_b;
  CaptureNode dumper;
};

TEST_F(SwitchTest, ForwardsByDestinationIp) {
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(host_a.packets.empty());
  EXPECT_EQ(sw.roce_counters().roce_rx, 1u);
  EXPECT_EQ(sw.roce_counters().roce_tx, 1u);
}

TEST_F(SwitchTest, MirrorsEveryRocePacket) {
  host_a.port().send(sample_packet());
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_EQ(dumper.packets.size(), 2u);
  EXPECT_EQ(sw.roce_counters().mirrored, 2u);
  // Mirror copies carry consecutive sequence numbers.
  EXPECT_EQ(extract_mirror_meta(dumper.packets[0]).mirror_seq, 0u);
  EXPECT_EQ(extract_mirror_meta(dumper.packets[1]).mirror_seq, 1u);
}

TEST_F(SwitchTest, DropRuleDropsButStillMirrors) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_TRUE(host_b.packets.empty());  // dropped before the MMU
  ASSERT_EQ(dumper.packets.size(), 1u);  // but mirrored (§3.4)
  EXPECT_EQ(extract_mirror_meta(dumper.packets[0]).event, EventType::kDrop);
  EXPECT_EQ(sw.roce_counters().dropped_by_event, 1u);
  EXPECT_EQ(sw.roce_counters().events_applied, 1u);
}

TEST_F(SwitchTest, EcnRuleMarksForwardedPacket) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kEcn});
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(parse_roce(host_b.packets[0])->ecn_ce());
  EXPECT_TRUE(verify_icrc(host_b.packets[0]));  // ECN is iCRC-masked
  EXPECT_EQ(extract_mirror_meta(dumper.packets.at(0)).event, EventType::kEcn);
}

TEST_F(SwitchTest, CorruptRuleBreaksIcrc) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kCorrupt});
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_FALSE(verify_icrc(host_b.packets[0]));
}

TEST_F(SwitchTest, EnforceDropsFalseKeepsTablesButForwards) {
  auto options = sw.options();
  options.enforce_drops = false;
  sw.set_options(options);
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 1u);  // matched but not enforced (§5)
  EXPECT_EQ(sw.roce_counters().events_applied, 1u);
}

TEST_F(SwitchTest, RewriteMigReqAction) {
  auto options = sw.options();
  options.rewrite_mig_req = true;
  sw.set_options(options);
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.opcode = IbOpcode::kSendOnly;
  spec.payload_len = 128;
  spec.mig_req = false;  // E810-style
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(parse_roce(host_b.packets[0])->bth.mig_req);
  EXPECT_TRUE(verify_icrc(host_b.packets[0]));
}

TEST_F(SwitchTest, EventStageAddsLatency) {
  // Compare arrival times with and without the event-injection stages.
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  const Tick with_events = sim.now();

  Simulator sim2;
  EventInjectorSwitch::Options options;
  options.enable_event_injection = false;
  EventInjectorSwitch sw2(&sim2, 4, options);
  CaptureNode a2(&sim2, "a2"), b2(&sim2, "b2");
  connect(a2.port(), sw2.port(0), LinkParams{100.0, 10});
  connect(b2.port(), sw2.port(1), LinkParams{100.0, 10});
  sw2.add_route(kFlow.dst_ip, 1);
  a2.port().send(sample_packet());
  sim2.run();
  ASSERT_EQ(b2.packets.size(), 1u);
  EXPECT_EQ(with_events - sim2.now(),
            EventInjectorSwitch::Options{}.event_stage_latency);
}

TEST_F(SwitchTest, UnroutableDestinationIsDropped) {
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = Ipv4Address::from_octets(172, 16, 0, 1);  // no route
  spec.opcode = IbOpcode::kSendOnly;
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  EXPECT_TRUE(host_b.packets.empty());
  EXPECT_EQ(sw.roce_counters().mirrored, 1u);  // still mirrored at ingress
}

// ---------------------------------------------------------------------------
// Gilbert–Elliott burst-loss channel
// ---------------------------------------------------------------------------

TEST(GilbertElliott, LossRateAndBurstLengthMatchParameters) {
  // Stationary loss rate of the two-state chain is p/(p+r); the mean
  // sojourn in Bad (mean burst length) is 1/r. Empirical estimates over a
  // long seeded run must land near both closed forms.
  const double p = 0.05;
  const double r = 0.25;
  GilbertElliottChannel channel(p, r, /*seed=*/0xB0B0);
  const int decisions = 200'000;
  int losses = 0;
  int bursts = 0;
  bool in_burst = false;
  for (int i = 0; i < decisions; ++i) {
    if (channel.drop_next()) {
      ++losses;
      if (!in_burst) ++bursts;
      in_burst = true;
    } else {
      in_burst = false;
    }
  }
  const double loss_rate = static_cast<double>(losses) / decisions;
  EXPECT_NEAR(loss_rate, p / (p + r), 0.02);
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(losses) / bursts;
  EXPECT_NEAR(mean_burst, 1.0 / r, 0.4);
  EXPECT_EQ(channel.decisions(), static_cast<std::uint64_t>(decisions));
}

TEST(GilbertElliott, DeterministicForSameSeed) {
  GilbertElliottChannel a(0.1, 0.3, 42);
  GilbertElliottChannel b(0.1, 0.3, 42);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.drop_next(), b.drop_next()) << "diverged at decision " << i;
  }
  // A different seed must (overwhelmingly) produce a different sequence.
  GilbertElliottChannel c(0.1, 0.3, 43);
  GilbertElliottChannel d(0.1, 0.3, 42);
  int agreements = 0;
  for (int i = 0; i < 10'000; ++i) {
    agreements += c.drop_next() == d.drop_next() ? 1 : 0;
  }
  EXPECT_LT(agreements, 10'000);
}

TEST(GilbertElliott, StartBadLosesTriggerPacket) {
  // The injector arms channels in Bad so the matched packet is the first
  // casualty; with r = 0 the burst never ends.
  GilbertElliottChannel channel(0.0, 0.0, 7, /*start_bad=*/true);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(channel.drop_next());
}

// ---------------------------------------------------------------------------
// The stateful fault models on the switch data plane
// ---------------------------------------------------------------------------

Packet psn_packet(std::uint32_t psn) {
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, 512};
  spec.payload_len = 512;
  spec.dest_qpn = kFlow.dst_qpn;
  spec.psn = psn;
  return build_roce_packet(spec);
}

TEST_F(SwitchTest, DuplicateRuleEmitsOneClone) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDuplicate});
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 2u);  // original + clone
  EXPECT_EQ(sw.fault_stats().duplicates_emitted, 1u);
  EXPECT_EQ(sw.roce_counters().roce_tx, 2u);
  // Mirrored once: the clone is an egress artifact, not new ingress.
  EXPECT_EQ(sw.roce_counters().mirrored, 1u);
}

TEST_F(SwitchTest, BurstLossChannelDropsArmedFlow) {
  sw.register_flow(kFlow, 42);
  EventRule rule{kFlow, 42, 1, EventType::kBurstLoss};
  rule.fault.ge_p = 0.0;  // never leaves Bad once armed...
  rule.fault.ge_r = 0.0;
  rule.fault.duration = 0;  // ...for the rest of the run
  sw.install_rule(rule);
  host_a.port().send(psn_packet(42));
  host_a.port().send(psn_packet(43));
  host_a.port().send(psn_packet(44));
  sim.run();
  // The arming packet and every successor of the flow are casualties, but
  // all of them are still mirrored first (§3.4/§3.5 integrity).
  EXPECT_TRUE(host_b.packets.empty());
  EXPECT_EQ(dumper.packets.size(), 3u);
  EXPECT_EQ(sw.fault_stats().burst_channels_started, 1u);
  EXPECT_EQ(sw.fault_stats().burst_loss_dropped, 3u);
  EXPECT_EQ(sw.roce_counters().dropped_by_event, 3u);
}

TEST_F(SwitchTest, BurstLossChannelExpires) {
  sw.register_flow(kFlow, 42);
  EventRule rule{kFlow, 42, 1, EventType::kBurstLoss};
  rule.fault.ge_p = 0.0;
  rule.fault.ge_r = 0.0;
  rule.fault.duration = 5 * kMicrosecond;
  sw.install_rule(rule);
  host_a.port().send(psn_packet(42));
  sim.run();
  EXPECT_TRUE(host_b.packets.empty());  // armed packet lost
  // Past the channel lifetime the same flow forwards cleanly again.
  sim.schedule_after(10 * kMicrosecond,
                     [this] { host_a.port().send(psn_packet(43)); });
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 1u);
  EXPECT_EQ(sw.active_burst_channels(), 0u);
}

TEST_F(SwitchTest, PauseStormSendsPfcTowardSender) {
  sw.register_flow(kFlow, 42);
  EventRule rule{kFlow, 42, 1, EventType::kPauseStorm};
  rule.fault.priority = 2;
  rule.fault.duration = 25 * kMicrosecond;
  sw.install_rule(rule);
  host_a.port().send(sample_packet());
  sim.run();
  // Frames at t=0/10us/20us into the storm plus the closing resume, all
  // delivered to the matched packet's ingress port (the sender).
  std::size_t pfc = 0;
  std::optional<PfcFrame> last;
  for (const auto& pkt : host_a.packets) {
    if (is_pfc_frame(pkt)) {
      ++pfc;
      last = parse_pfc_frame(pkt);
    }
  }
  EXPECT_EQ(pfc, 4u);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->class_enable, 1u << 2);
  EXPECT_EQ(last->quanta[2], 0u);  // storm ends with an explicit resume
  EXPECT_EQ(sw.fault_stats().pause_storms, 1u);
  EXPECT_EQ(sw.fault_stats().pause_frames_sent, 4u);
  // The data packet itself still forwards: a pause storm gates the
  // receiver's egress, not the switch path.
  EXPECT_EQ(host_b.packets.size(), 1u);
}

TEST_F(SwitchTest, LinkFlapDropsQueuedAndRecovers) {
  // Slow egress toward host_b so a queue exists when the flap fires.
  // (Rebuild the topology with a 1 Gbps sink link.)
  Simulator slow_sim;
  EventInjectorSwitch slow_sw(&slow_sim, 4, EventInjectorSwitch::Options{});
  CaptureNode a(&slow_sim, "a"), b(&slow_sim, "b");
  connect(a.port(), slow_sw.port(0), LinkParams{100.0, 10});
  connect(b.port(), slow_sw.port(1), LinkParams{1.0, 10});
  slow_sw.add_route(kFlow.src_ip, 0);
  slow_sw.add_route(kFlow.dst_ip, 1);
  slow_sw.register_flow(kFlow, 42);
  EventRule rule{kFlow, 44, 1, EventType::kLinkFlap};
  rule.fault.duration = 10 * kMicrosecond;
  rule.fault.flap_drops_queued = true;
  slow_sw.install_rule(rule);
  // #1 is serializing onto the slow link when #3 (the match, sent once the
  // first two have cleared the ingress pipeline) flaps the port — #2 sits
  // in the egress queue and is shed, the in-flight #1 completes, and #3
  // (enqueued while the port is down) is held and delivered once the port
  // comes back.
  a.port().send(psn_packet(42));
  a.port().send(psn_packet(43));
  slow_sim.schedule_after(2 * kMicrosecond,
                          [&a] { a.port().send(psn_packet(44)); });
  slow_sim.run();
  EXPECT_EQ(slow_sw.fault_stats().link_flaps, 1u);
  EXPECT_EQ(slow_sw.fault_stats().flap_queued_dropped, 1u);
  EXPECT_EQ(b.packets.size(), 2u);
  EXPECT_TRUE(slow_sw.port(1).link_up());
}

// ---------------------------------------------------------------------------
// End-to-end determinism of every stateful fault (same config + seed =>
// byte-identical deterministic telemetry), plus the per-type activity
// counters the report surfaces.
// ---------------------------------------------------------------------------

struct FaultCase {
  const char* name;
  DataPacketEvent event;
  const char* expected_counter;  ///< must be nonzero in telemetry
};

class FaultDeterminismTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultDeterminismTest, RunsAreByteIdenticalAndCounterFires) {
  const FaultCase& fault = GetParam();
  TestConfig cfg;
  cfg.traffic.num_connections = 1;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  cfg.traffic.data_pkt_events.push_back(fault.event);

  const TestResult first = Orchestrator(cfg).run();
  const TestResult second = Orchestrator(cfg).run();
  EXPECT_TRUE(first.finished) << fault.name;
  EXPECT_TRUE(first.integrity.ok()) << fault.name << ": "
                                    << first.integrity.to_string();
  EXPECT_EQ(telemetry::serialize_deterministic(first.telemetry),
            telemetry::serialize_deterministic(second.telemetry))
      << fault.name << ": same config+seed diverged";
  const auto it = first.telemetry.counters.find(fault.expected_counter);
  ASSERT_NE(it, first.telemetry.counters.end())
      << fault.name << ": " << fault.expected_counter << " not scraped";
  EXPECT_GT(it->second, 0u) << fault.name;
}

FaultCase fault_cases[] = {
    {"duplicate", DataPacketEvent{1, 3, EventType::kDuplicate, 1},
     "injector.duplicates_emitted"},
    {"burst-loss",
     [] {
       DataPacketEvent ev{1, 3, EventType::kBurstLoss, 1};
       ev.fault.ge_p = 0.3;
       ev.fault.ge_r = 0.5;
       ev.fault.duration = 20 * kMicrosecond;
       return ev;
     }(),
     "injector.burst_channels_started"},
    {"pause-storm",
     [] {
       DataPacketEvent ev{1, 3, EventType::kPauseStorm, 1};
       ev.fault.duration = 50 * kMicrosecond;
       return ev;
     }(),
     "rnic.requester.pause_frames_rx"},
    {"link-flap",
     [] {
       DataPacketEvent ev{1, 3, EventType::kLinkFlap, 1};
       ev.fault.duration = 10 * kMicrosecond;
       return ev;
     }(),
     "injector.link_flaps"},
};

INSTANTIATE_TEST_SUITE_P(AllFaults, FaultDeterminismTest,
                         ::testing::ValuesIn(fault_cases),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_F(SwitchTest, ControlPacketsAreNotInjectable) {
  // ACKs match no event rules even if one is installed for their PSN.
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.dest_qpn = kFlow.dst_qpn;
  spec.psn = 42;
  spec.opcode = IbOpcode::kAcknowledge;
  spec.aeth = Aeth::ack(0);
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 1u);  // forwarded, not dropped
  EXPECT_EQ(sw.roce_counters().events_applied, 0u);
}

}  // namespace
}  // namespace lumina
