// Unit tests for the event-injector switch: ITER tracking (Fig. 3), the
// match-action event table, metadata embedding (§3.4), weighted
// round-robin mirroring, and the data-plane pipeline.
#include <gtest/gtest.h>

#include <map>

#include "injector/event_table.h"
#include "util/random.h"
#include "injector/mirror.h"
#include "injector/switch.h"

namespace lumina {
namespace {

const FlowKey kFlow{Ipv4Address::from_octets(10, 0, 0, 1),
                    Ipv4Address::from_octets(10, 0, 0, 2), 0xea};

// ---------------------------------------------------------------------------
// IterTracker — the Fig. 3 walkthrough and beyond
// ---------------------------------------------------------------------------

TEST(IterTracker, Figure3Walkthrough) {
  // Packets: 1 2 3 4 | 2 3 4 | 3 4   (drop 2 in round 1, 3 in round 2)
  IterTracker tracker;
  tracker.register_flow(kFlow, 1);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {1, 1}, {2, 1}, {3, 1}, {4, 1},  // first round
      {2, 2}, {3, 2}, {4, 2},          // retransmission round 2
      {3, 3}, {4, 3},                  // retransmission round 3
  };
  for (const auto& [psn, iter] : expected) {
    EXPECT_EQ(tracker.observe(kFlow, psn), iter) << "psn " << psn;
  }
}

TEST(IterTracker, EqualPsnStartsNewRound) {
  IterTracker tracker;
  tracker.register_flow(kFlow, 10);
  EXPECT_EQ(tracker.observe(kFlow, 10), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 10), 2u);  // PSN == last -> new round
  EXPECT_EQ(tracker.observe(kFlow, 10), 3u);
}

TEST(IterTracker, FirstPacketOfRegisteredFlowIsRoundOne) {
  // last-PSN initializes to IPSN-1 so the first packet stays in round 1.
  IterTracker tracker;
  tracker.register_flow(kFlow, 1000);
  EXPECT_EQ(tracker.observe(kFlow, 1000), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 1001), 1u);
}

TEST(IterTracker, StatefulDiscoveryFallback) {
  // Unregistered flows are discovered on first sight (ablation mode).
  IterTracker tracker;
  EXPECT_EQ(tracker.observe(kFlow, 500), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 501), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 500), 2u);
  EXPECT_EQ(tracker.tracked_flows(), 1u);
}

TEST(IterTracker, FlowsAreIndependent) {
  IterTracker tracker;
  FlowKey other = kFlow;
  other.dst_qpn = 0xfe;
  tracker.register_flow(kFlow, 1);
  tracker.register_flow(other, 1);
  tracker.observe(kFlow, 1);
  tracker.observe(kFlow, 1);  // flow A now round 2
  EXPECT_EQ(tracker.iter(kFlow), 2u);
  EXPECT_EQ(tracker.iter(other), 1u);
}

TEST(IterTracker, HandlesPsnWrap) {
  IterTracker tracker;
  tracker.register_flow(kFlow, 0xfffffe);
  EXPECT_EQ(tracker.observe(kFlow, 0xfffffe), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 0xffffff), 1u);
  EXPECT_EQ(tracker.observe(kFlow, 0x000000), 1u);  // wrap is forward
  EXPECT_EQ(tracker.observe(kFlow, 0xffffff), 2u);  // going back: new round
}

/// Property: ITER computed by the tracker matches a reference model that
/// replays the same PSN sequence.
class IterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IterPropertyTest, MatchesReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  IterTracker tracker;
  tracker.register_flow(kFlow, 100);
  std::uint32_t last = 99;
  std::uint32_t ref_iter = 1;
  std::uint32_t psn = 100;
  for (int i = 0; i < 500; ++i) {
    // Random walk: mostly forward, occasional rewinds (retransmissions).
    if (rng.next_bool(0.15)) {
      psn = psn_add(psn, -static_cast<std::int64_t>(rng.next_below(5)) - 1);
    } else {
      psn = psn_add(psn, 1);
    }
    if (!psn_gt(psn, last)) ++ref_iter;
    last = psn;
    EXPECT_EQ(tracker.observe(kFlow, psn), ref_iter) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IterPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 42));

// ---------------------------------------------------------------------------
// EventTable
// ---------------------------------------------------------------------------

TEST(EventTable, ExactMatchAndConsumption) {
  EventTable table;
  table.install(EventRule{kFlow, 1004, 1, EventType::kEcn});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.match(kFlow, 1003, 1).has_value());
  EXPECT_FALSE(table.match(kFlow, 1004, 2).has_value());
  FlowKey other = kFlow;
  other.dst_qpn = 0x1;
  EXPECT_FALSE(table.match(other, 1004, 1).has_value());
  const auto hit = table.match(kFlow, 1004, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->type, EventType::kEcn);
  // Single-shot: the rule is consumed.
  EXPECT_FALSE(table.match(kFlow, 1004, 1).has_value());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.hits(), 1u);
}

TEST(EventTable, PeekDoesNotConsume) {
  EventTable table;
  table.install(EventRule{kFlow, 7, 1, EventType::kDrop});
  EXPECT_TRUE(table.peek(kFlow, 7, 1).has_value());
  EXPECT_TRUE(table.peek(kFlow, 7, 1).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(EventTable, SameKeyDifferentIter) {
  EventTable table;
  table.install(EventRule{kFlow, 5, 1, EventType::kDrop});
  table.install(EventRule{kFlow, 5, 2, EventType::kDrop});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.match(kFlow, 5, 2).has_value());
  EXPECT_TRUE(table.match(kFlow, 5, 1).has_value());
}

TEST(EventTable, PaperScaleCapacity) {
  // §5: ~100K events for 10K connections fit in ~1 MB of table memory.
  EventTable table;
  for (std::uint32_t c = 0; c < 10'000; ++c) {
    FlowKey flow = kFlow;
    flow.dst_qpn = c;
    for (std::uint32_t e = 0; e < 10; ++e) {
      table.install(EventRule{flow, 1000 + e, 1, EventType::kDrop});
    }
  }
  EXPECT_EQ(table.size(), 100'000u);
  FlowKey probe = kFlow;
  probe.dst_qpn = 9'999;
  EXPECT_TRUE(table.match(probe, 1009, 1).has_value());
}

// ---------------------------------------------------------------------------
// MirrorEngine — metadata embedding + WRR
// ---------------------------------------------------------------------------

Packet sample_packet() {
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.opcode = IbOpcode::kWriteOnly;
  spec.reth = Reth{0, 0, 512};
  spec.payload_len = 512;
  spec.dest_qpn = kFlow.dst_qpn;
  spec.psn = 42;
  return build_roce_packet(spec);
}

TEST(MirrorEngine, EmbedsAndExtractsMetadata) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  const auto mirrored = engine.mirror(sample_packet(), EventType::kDrop,
                                      123'456'789);
  const MirrorMeta meta = extract_mirror_meta(mirrored.clone);
  EXPECT_EQ(meta.mirror_seq, 0u);
  EXPECT_EQ(meta.ingress_timestamp, 123'456'789);
  EXPECT_EQ(meta.event, EventType::kDrop);

  const auto second = engine.mirror(sample_packet(), EventType::kNone, 99);
  EXPECT_EQ(extract_mirror_meta(second.clone).mirror_seq, 1u);
  EXPECT_EQ(engine.mirrored_count(), 2u);
}

TEST(MirrorEngine, CloneStillParsesAndOriginalUntouched) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  const Packet original = sample_packet();
  const auto mirrored = engine.mirror(original, EventType::kEcn, 5);
  const auto view = parse_roce(mirrored.clone);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->bth.psn, 42u);
  EXPECT_NE(view->udp_dst_port, kRoceUdpPort);  // randomized for RSS
  // Restoration brings the clone back to a proper RoCE packet.
  Packet restored = mirrored.clone;
  restore_roce_udp_port(restored);
  EXPECT_EQ(parse_roce(restored)->udp_dst_port, kRoceUdpPort);
  // The original was cloned, not mutated.
  EXPECT_EQ(parse_roce(original)->udp_dst_port, kRoceUdpPort);
  EXPECT_EQ(parse_roce(original)->ttl, 64);
}

TEST(MirrorEngine, RandomizationCanBeDisabled) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}});
  engine.set_randomize_udp_port(false);
  const auto mirrored = engine.mirror(sample_packet(), EventType::kNone, 0);
  EXPECT_EQ(parse_roce(mirrored.clone)->udp_dst_port, kRoceUdpPort);
}

TEST(MirrorEngine, WrrHonorsWeights) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}, {3, 3}});
  std::map<int, int> counts;
  for (int i = 0; i < 4000; ++i) {
    ++counts[engine.mirror(sample_packet(), EventType::kNone, 0).port_index];
  }
  EXPECT_EQ(counts[2], 1000);
  EXPECT_EQ(counts[3], 3000);
}

TEST(MirrorEngine, EqualWeightsAlternate) {
  MirrorEngine engine(1);
  engine.set_targets({{2, 1}, {3, 1}});
  std::map<int, int> counts;
  for (int i = 0; i < 100; ++i) {
    ++counts[engine.mirror(sample_packet(), EventType::kNone, 0).port_index];
  }
  EXPECT_EQ(counts[2], 50);
  EXPECT_EQ(counts[3], 50);
}

// ---------------------------------------------------------------------------
// The switch data plane
// ---------------------------------------------------------------------------

class CaptureNode : public Node {
 public:
  CaptureNode(Simulator* sim, std::string name)
      : name_(std::move(name)), port_(sim, this, 0) {}
  void handle_packet(int, Packet pkt) override {
    packets.push_back(std::move(pkt));
  }
  std::string name() const override { return name_; }
  Port& port() { return port_; }
  std::vector<Packet> packets;

 private:
  std::string name_;
  Port port_;
};

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : sw(&sim, 4, EventInjectorSwitch::Options{}),
        host_a(&sim, "host-a"),
        host_b(&sim, "host-b"),
        dumper(&sim, "dumper") {
    connect(host_a.port(), sw.port(0), LinkParams{100.0, 10});
    connect(host_b.port(), sw.port(1), LinkParams{100.0, 10});
    connect(dumper.port(), sw.port(2), LinkParams{100.0, 10});
    sw.add_route(kFlow.src_ip, 0);
    sw.add_route(kFlow.dst_ip, 1);
    sw.set_mirror_targets({{2, 1}});
  }

  Simulator sim;
  EventInjectorSwitch sw;
  CaptureNode host_a;
  CaptureNode host_b;
  CaptureNode dumper;
};

TEST_F(SwitchTest, ForwardsByDestinationIp) {
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(host_a.packets.empty());
  EXPECT_EQ(sw.roce_counters().roce_rx, 1u);
  EXPECT_EQ(sw.roce_counters().roce_tx, 1u);
}

TEST_F(SwitchTest, MirrorsEveryRocePacket) {
  host_a.port().send(sample_packet());
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_EQ(dumper.packets.size(), 2u);
  EXPECT_EQ(sw.roce_counters().mirrored, 2u);
  // Mirror copies carry consecutive sequence numbers.
  EXPECT_EQ(extract_mirror_meta(dumper.packets[0]).mirror_seq, 0u);
  EXPECT_EQ(extract_mirror_meta(dumper.packets[1]).mirror_seq, 1u);
}

TEST_F(SwitchTest, DropRuleDropsButStillMirrors) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_TRUE(host_b.packets.empty());  // dropped before the MMU
  ASSERT_EQ(dumper.packets.size(), 1u);  // but mirrored (§3.4)
  EXPECT_EQ(extract_mirror_meta(dumper.packets[0]).event, EventType::kDrop);
  EXPECT_EQ(sw.roce_counters().dropped_by_event, 1u);
  EXPECT_EQ(sw.roce_counters().events_applied, 1u);
}

TEST_F(SwitchTest, EcnRuleMarksForwardedPacket) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kEcn});
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(parse_roce(host_b.packets[0])->ecn_ce());
  EXPECT_TRUE(verify_icrc(host_b.packets[0]));  // ECN is iCRC-masked
  EXPECT_EQ(extract_mirror_meta(dumper.packets.at(0)).event, EventType::kEcn);
}

TEST_F(SwitchTest, CorruptRuleBreaksIcrc) {
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kCorrupt});
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_FALSE(verify_icrc(host_b.packets[0]));
}

TEST_F(SwitchTest, EnforceDropsFalseKeepsTablesButForwards) {
  auto options = sw.options();
  options.enforce_drops = false;
  sw.set_options(options);
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  host_a.port().send(sample_packet());
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 1u);  // matched but not enforced (§5)
  EXPECT_EQ(sw.roce_counters().events_applied, 1u);
}

TEST_F(SwitchTest, RewriteMigReqAction) {
  auto options = sw.options();
  options.rewrite_mig_req = true;
  sw.set_options(options);
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.opcode = IbOpcode::kSendOnly;
  spec.payload_len = 128;
  spec.mig_req = false;  // E810-style
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  EXPECT_TRUE(parse_roce(host_b.packets[0])->bth.mig_req);
  EXPECT_TRUE(verify_icrc(host_b.packets[0]));
}

TEST_F(SwitchTest, EventStageAddsLatency) {
  // Compare arrival times with and without the event-injection stages.
  host_a.port().send(sample_packet());
  sim.run();
  ASSERT_EQ(host_b.packets.size(), 1u);
  const Tick with_events = sim.now();

  Simulator sim2;
  EventInjectorSwitch::Options options;
  options.enable_event_injection = false;
  EventInjectorSwitch sw2(&sim2, 4, options);
  CaptureNode a2(&sim2, "a2"), b2(&sim2, "b2");
  connect(a2.port(), sw2.port(0), LinkParams{100.0, 10});
  connect(b2.port(), sw2.port(1), LinkParams{100.0, 10});
  sw2.add_route(kFlow.dst_ip, 1);
  a2.port().send(sample_packet());
  sim2.run();
  ASSERT_EQ(b2.packets.size(), 1u);
  EXPECT_EQ(with_events - sim2.now(),
            EventInjectorSwitch::Options{}.event_stage_latency);
}

TEST_F(SwitchTest, UnroutableDestinationIsDropped) {
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = Ipv4Address::from_octets(172, 16, 0, 1);  // no route
  spec.opcode = IbOpcode::kSendOnly;
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  EXPECT_TRUE(host_b.packets.empty());
  EXPECT_EQ(sw.roce_counters().mirrored, 1u);  // still mirrored at ingress
}

TEST_F(SwitchTest, ControlPacketsAreNotInjectable) {
  // ACKs match no event rules even if one is installed for their PSN.
  sw.register_flow(kFlow, 42);
  sw.install_rule(EventRule{kFlow, 42, 1, EventType::kDrop});
  RocePacketSpec spec;
  spec.src_ip = kFlow.src_ip;
  spec.dst_ip = kFlow.dst_ip;
  spec.dest_qpn = kFlow.dst_qpn;
  spec.psn = 42;
  spec.opcode = IbOpcode::kAcknowledge;
  spec.aeth = Aeth::ack(0);
  host_a.port().send(build_roce_packet(spec));
  sim.run();
  EXPECT_EQ(host_b.packets.size(), 1u);  // forwarded, not dropped
  EXPECT_EQ(sw.roce_counters().events_applied, 0u);
}

}  // namespace
}  // namespace lumina
