// Unit tests for the composable data-plane pipeline (src/pipeline): the
// stage-chain contract validation, the permutation property (every
// permutation-legal chain produces frame-for-frame identical output under
// stage-major and packet-major execution), and the CLMUL-vs-slice-by-8
// CRC32 differential (gated on runtime CPU-feature detection).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "packet/icrc.h"
#include "pipeline/stage.h"
#include "util/random.h"

namespace lumina::pipeline {
namespace {

// ---------------------------------------------------------------------------
// Synthetic stages. Each follows the stage discipline the production
// chains rely on: deterministic bodies, private state touched in slot
// order only, per-stage logs so internal state transitions can be
// compared across execution orders.
// ---------------------------------------------------------------------------

/// Classifier: seeds slot metadata from the frame bytes and marks frames
/// with a nonzero lead byte as "data".
class Tag : public Stage {
 public:
  explicit Tag(std::vector<std::uint64_t>& log) : log_(log) {}
  const char* name() const override { return "tag"; }
  StageContract contract() const override { return {.provides_view = true}; }
  void process(PacketBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.live(i)) continue;
      const Packet& pkt = batch.pkt(i);
      batch.meta(i).is_data = !pkt.bytes.empty() && pkt.bytes[0] != 0;
      log_.push_back(pkt.size());
    }
  }

 private:
  std::vector<std::uint64_t>& log_;
};

/// Byte transform with slot-order internal state: XORs every frame byte
/// with a rolling key that advances once per live slot.
class Scramble : public Stage {
 public:
  explicit Scramble(std::vector<std::uint64_t>& log) : log_(log) {}
  const char* name() const override { return "scramble"; }
  StageContract contract() const override {
    return {.needs_view = true, .mutates_bytes = true};
  }
  void process(PacketBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.live(i)) continue;
      key_ = key_ * 0x9e3779b97f4a7c15ULL + 1;
      for (auto& b : batch.pkt(i).bytes) {
        b ^= static_cast<std::uint8_t>(key_);
      }
      batch.pkt(i).invalidate_view();
      log_.push_back(key_);
    }
  }

 private:
  std::uint64_t key_ = 0xabcdef;
  std::vector<std::uint64_t>& log_;
};

/// Consuming stage with slot-order internal state: retires every third
/// live slot it sweeps (across batches, like a fault channel would).
class Cull : public Stage {
 public:
  explicit Cull(std::vector<std::uint64_t>& log) : log_(log) {}
  const char* name() const override { return "cull"; }
  StageContract contract() const override {
    return {.needs_view = true, .may_consume = true};
  }
  void process(PacketBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.live(i)) continue;
      if (++seen_ % 3 == 0) {
        batch.consume(i);
        log_.push_back(seen_);
      }
    }
  }

 private:
  std::uint64_t seen_ = 0;
  std::vector<std::uint64_t>& log_;
};

/// Pure observer: accumulates a checksum of every live frame.
class Observe : public Stage {
 public:
  explicit Observe(std::vector<std::uint64_t>& log) : log_(log) {}
  const char* name() const override { return "observe"; }
  StageContract contract() const override { return {.needs_view = true}; }
  void process(PacketBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.live(i)) continue;
      // Checksum over frame bytes only: the slot index is an execution
      // artifact (the packet-major window renumbers slots), never state.
      const auto& bytes = batch.pkt(i).bytes;
      log_.push_back(std::accumulate(bytes.begin(), bytes.end(),
                                     std::uint64_t{0}));
    }
  }

 private:
  std::vector<std::uint64_t>& log_;
};

constexpr std::size_t kNumStages = 4;

/// Builds stage `index` writing into `log`. Index 0 is the classifier.
std::unique_ptr<Stage> make_stage(std::size_t index,
                                  std::vector<std::uint64_t>& log) {
  switch (index) {
    case 0: return std::make_unique<Tag>(log);
    case 1: return std::make_unique<Scramble>(log);
    case 2: return std::make_unique<Cull>(log);
    default: return std::make_unique<Observe>(log);
  }
}

/// A chain assembled from a stage-index permutation plus its per-stage
/// logs (one vector per stage, in permutation order).
struct ChainUnderTest {
  StageChain chain;
  std::array<std::vector<std::uint64_t>, kNumStages> logs;

  /// Throws std::logic_error for permutation orders the contract
  /// validation rejects (a needs_view stage before the classifier).
  explicit ChainUnderTest(const std::array<std::size_t, kNumStages>& order) {
    for (std::size_t p = 0; p < kNumStages; ++p) {
      chain.append(make_stage(order[p], logs[p]));
    }
  }
};

/// Deterministic batch of `n` frames with varied sizes and contents.
void seed_batch(PacketBatch& batch, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t j = 0; j < n; ++j) {
    Packet pkt;
    pkt.bytes.resize(rng.next_below(256));
    for (auto& b : pkt.bytes) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    batch.push(std::move(pkt), static_cast<int>(j % 3),
               static_cast<Tick>(j * 100));
  }
}

// ---------------------------------------------------------------------------
// Contract validation
// ---------------------------------------------------------------------------

TEST(StageChainContract, NeedsViewBeforeClassifierThrows) {
  std::vector<std::uint64_t> log;
  StageChain chain;
  EXPECT_THROW(chain.append(std::make_unique<Observe>(log)),
               std::logic_error);
  chain.append(std::make_unique<Tag>(log));
  EXPECT_NO_THROW(chain.append(std::make_unique<Observe>(log)));
  EXPECT_EQ(chain.size(), 2u);
}

TEST(StageChainContract, DescribeNamesStagesInOrder) {
  std::vector<std::uint64_t> log;
  StageChain chain;
  chain.append(std::make_unique<Tag>(log));
  chain.append(std::make_unique<Scramble>(log));
  chain.append(std::make_unique<Cull>(log));
  EXPECT_EQ(chain.describe(), "tag -> scramble -> cull");
}

// ---------------------------------------------------------------------------
// Permutation property: for EVERY permutation-legal chain, stage-major
// run() and the packet-major oracle run_per_packet() leave the batch —
// frames, liveness, metadata — and every stage's internal state
// byte-identical.
// ---------------------------------------------------------------------------

TEST(StageChainProperty, EveryLegalPermutationMatchesPerPacketOracle) {
  std::array<std::size_t, kNumStages> order{0, 1, 2, 3};
  std::sort(order.begin(), order.end());
  int legal = 0;
  int illegal = 0;
  do {
    // Legality: the classifier (stage 0) must come first, because every
    // other synthetic stage declares needs_view. The chain must agree.
    const bool expect_legal = order[0] == 0;
    if (!expect_legal) {
      EXPECT_THROW(ChainUnderTest{order}, std::logic_error);
      ++illegal;
      continue;
    }
    ++legal;
    ChainUnderTest stage_major(order);
    ChainUnderTest packet_major(order);

    for (const std::size_t n : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}, PacketBatch::kMaxSlots}) {
      PacketBatch a;
      PacketBatch b;
      seed_batch(a, n, 0x5eed + n);
      seed_batch(b, n, 0x5eed + n);

      stage_major.chain.run(a);
      packet_major.chain.run_per_packet(b);

      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.live(i), b.live(i))
            << stage_major.chain.describe() << " slot " << i;
        EXPECT_EQ(a.pkt(i).bytes, b.pkt(i).bytes)
            << stage_major.chain.describe() << " slot " << i;
        EXPECT_EQ(a.meta(i).is_data, b.meta(i).is_data)
            << stage_major.chain.describe() << " slot " << i;
        EXPECT_EQ(a.meta(i).in_port, b.meta(i).in_port);
        EXPECT_EQ(a.meta(i).ingress_ts, b.meta(i).ingress_ts);
      }
      a.reclaim();
      b.reclaim();
    }
    // Per-stage state transitions happened in the same order with the
    // same values (the cross-stage interleaving differs, by design).
    for (std::size_t p = 0; p < kNumStages; ++p) {
      EXPECT_EQ(stage_major.logs[p], packet_major.logs[p])
          << stage_major.chain.describe() << " stage " << p;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(legal, 6);
  EXPECT_EQ(illegal, 18);
}

TEST(StageChainProperty, ConsumedSlotsSkipLaterStages) {
  std::vector<std::uint64_t> tag_log;
  std::vector<std::uint64_t> cull_log;
  std::vector<std::uint64_t> observe_log;
  StageChain chain;
  chain.append(std::make_unique<Tag>(tag_log));
  chain.append(std::make_unique<Cull>(cull_log));
  chain.append(std::make_unique<Observe>(observe_log));

  PacketBatch batch;
  seed_batch(batch, 9, 0xfeed);
  chain.run(batch);
  // Cull retires every third live slot; Observe sees only the survivors.
  EXPECT_EQ(cull_log.size(), 3u);
  EXPECT_EQ(observe_log.size(), 6u);
  batch.reclaim();
}

// ---------------------------------------------------------------------------
// CLMUL-vs-slice-by-8 differential (satellite of the batch pipeline: the
// folded iCRC engine must be observationally invisible too). Gated on
// runtime CPU-feature detection — on hardware without PCLMULQDQ the
// engine reports unsupported and these tests reduce to the fallback
// identity.
// ---------------------------------------------------------------------------

TEST(ClmulCrc, MatchesSliceBy8AcrossLengthsAndAlignments) {
  Rng rng(0xc1c);
  // Lengths bracket the dispatch threshold and the 64 B fold block:
  // sub-16 (fallback), 16..63 (single-lane region), 64/65/127/128/129
  // (fold boundaries), and jumbo-frame-ish tails.
  const std::size_t lengths[] = {0,  1,  15,  16,  17,  63,   64,  65,
                                 96, 127, 128, 129, 256, 1023, 1500, 4096};
  for (const std::size_t len : lengths) {
    for (std::size_t lead = 0; lead < 8; ++lead) {
      std::vector<std::uint8_t> backing(lead + len);
      for (auto& b : backing) {
        b = static_cast<std::uint8_t>(rng.next_below(256));
      }
      const auto data =
          std::span<const std::uint8_t>(backing).subspan(lead);
      const std::uint32_t seed =
          static_cast<std::uint32_t>(rng.next_u64());
      EXPECT_EQ(crc32_update_clmul(seed, data),
                crc32_update_slice8(seed, data))
          << "len " << len << " lead " << lead;
      EXPECT_EQ(crc32_update(seed, data), crc32_update_slice8(seed, data))
          << "dispatcher, len " << len << " lead " << lead;
    }
  }
}

TEST(ClmulCrc, SupportedEngineIsExercisedWhenCpuHasIt) {
  // On PCLMULQDQ hardware the differential above must have exercised the
  // folded engine (not just the fallback); record which path ran so a CI
  // log shows whether the fast path was covered.
  if (!crc32_clmul_supported()) {
    GTEST_SKIP() << "CPU lacks PCLMULQDQ/SSE4.1 (or build disabled CLMUL); "
                    "fallback identity covered above";
  }
  std::vector<std::uint8_t> data(512);
  Rng rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  EXPECT_EQ(crc32_update_clmul(kCrcInit, data),
            crc32_update_slice8(kCrcInit, data));
}

}  // namespace
}  // namespace lumina::pipeline
