// Tests for remote-access protection: rkey validation and memory-region
// bounds on Write, Read, and atomic requests, with the fatal
// NAK-remote-access path back to the requester.
#include <gtest/gtest.h>

#include "rnic/rnic.h"

namespace lumina {
namespace {

class PassthroughWire : public Node {
 public:
  explicit PassthroughWire(Simulator* sim)
      : port0_(sim, this, 0), port1_(sim, this, 1) {}
  void handle_packet(int in_port, Packet pkt) override {
    const auto view = parse_roce(pkt);
    if (view) log.push_back(*view);
    (in_port == 0 ? port1_ : port0_).send(std::move(pkt));
  }
  std::string name() const override { return "wire"; }
  Port& port0() { return port0_; }
  Port& port1() { return port1_; }
  std::vector<RoceView> log;

 private:
  Port port0_;
  Port port1_;
};

class AccessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    req = std::make_unique<Rnic>(&sim, "req",
                                 DeviceProfile::get(NicType::kCx5),
                                 RoceParameters{}, MacAddress::from_u48(0xaa));
    resp = std::make_unique<Rnic>(&sim, "resp",
                                  DeviceProfile::get(NicType::kCx5),
                                  RoceParameters{}, MacAddress::from_u48(0xbb));
    connect(req->port(), wire.port0(), LinkParams{100.0, 200});
    connect(resp->port(), wire.port1(), LinkParams{100.0, 200});
    rq = req->create_qp({});
    rs = resp->create_qp({});
    QpEndpointInfo req_info{Ipv4Address::from_octets(10, 0, 0, 1), rq->qpn(),
                            1000, 0x1000, 1 << 20, 0x11};
    // Responder MR: [0x2000, 0x2000 + 1 MiB), rkey 0x22.
    QpEndpointInfo resp_info{Ipv4Address::from_octets(10, 0, 0, 2), rs->qpn(),
                             5000, 0x2000, 1 << 20, 0x22};
    rq->connect(req_info, resp_info);
    rs->connect(resp_info, req_info);
    rq->set_completion_callback(
        [this](const WorkCompletion& wc) { completions.push_back(wc); });
  }

  int access_naks_on_wire() const {
    int count = 0;
    for (const auto& v : wire.log) {
      if (v.bth.opcode == IbOpcode::kAcknowledge && v.aeth &&
          v.aeth->is_access_nak()) {
        ++count;
      }
    }
    return count;
  }

  Simulator sim;
  PassthroughWire wire{&sim};
  std::unique_ptr<Rnic> req;
  std::unique_ptr<Rnic> resp;
  QueuePair* rq = nullptr;
  QueuePair* rs = nullptr;
  std::vector<WorkCompletion> completions;
};

TEST_F(AccessTest, ValidWriteWithinRegionSucceeds) {
  rq->post_send({1, RdmaVerb::kWrite, 4096, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(access_naks_on_wire(), 0);
}

TEST_F(AccessTest, WrongRkeyOnWriteIsFatal) {
  rq->post_send({1, RdmaVerb::kWrite, 4096, 0x2000, 0xBAD});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
  EXPECT_TRUE(rq->in_error());
  EXPECT_EQ(resp->counters().remote_access_errors, 1u);
  EXPECT_EQ(access_naks_on_wire(), 1);
}

TEST_F(AccessTest, OutOfBoundsWriteIsFatal) {
  // Starts inside the MR but runs past its end.
  rq->post_send({1, RdmaVerb::kWrite, 8192, 0x2000 + (1 << 20) - 1024, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(resp->counters().remote_access_errors, 1u);
}

TEST_F(AccessTest, WriteBelowRegionBaseIsFatal) {
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x1F00, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
}

TEST_F(AccessTest, WrongRkeyOnReadIsFatal) {
  rq->post_send({1, RdmaVerb::kRead, 4096, 0x2000, 0xBAD});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(resp->counters().remote_access_errors, 1u);
  // No read responses flowed.
  for (const auto& v : wire.log) {
    EXPECT_FALSE(is_read_response(v.bth.opcode));
  }
}

TEST_F(AccessTest, WrongRkeyOnAtomicIsFatal) {
  WorkRequest wr;
  wr.wr_id = 1;
  wr.verb = RdmaVerb::kFetchAdd;
  wr.length = 8;
  wr.remote_addr = 0x2000;
  wr.rkey = 0xBAD;
  wr.compare_add = 1;
  rq->post_send(wr);
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(rs->atomic_memory(0x2000), 0u);  // never executed
}

TEST_F(AccessTest, SubsequentWorkFlushesAfterAccessError) {
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0xBAD});
  rq->post_send({2, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(completions[1].status, WcStatus::kFlushed);
}

TEST_F(AccessTest, SendIsNotSubjectToRkeyChecks) {
  // Send places data into posted receive buffers; no RETH, no rkey.
  rs->post_recv(0);
  rq->post_send({1, RdmaVerb::kSendRecv, 2048, 0, 0xBAD});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
}

}  // namespace
}  // namespace lumina
