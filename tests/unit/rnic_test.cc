// Unit tests for the RNIC model: QP state machines, Go-Back-N recovery,
// retransmission timers, DCQCN NP/RP wiring, counters, and error states.
//
// Two Rnics are wired through a tiny programmable "wire" node that can
// observe, drop, or mark packets — isolating transport behavior from the
// full injector/orchestrator stack.
#include <gtest/gtest.h>

#include <functional>

#include "rnic/rnic.h"

namespace lumina {
namespace {

const Ipv4Address kReqIp = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kRespIp = Ipv4Address::from_octets(10, 0, 0, 2);

/// A two-port middlebox: forwards 0<->1, applies an optional mutator that
/// may drop (return false) or transform packets, and logs everything.
class TestWire : public Node {
 public:
  explicit TestWire(Simulator* sim)
      : port0_(sim, this, 0), port1_(sim, this, 1) {}

  void handle_packet(int in_port, Packet pkt) override {
    const auto view = parse_roce(pkt);
    if (view) log.push_back(*view);
    if (mutate && !mutate(in_port, pkt)) return;  // dropped
    (in_port == 0 ? port1_ : port0_).send(std::move(pkt));
  }
  std::string name() const override { return "wire"; }

  Port& port0() { return port0_; }
  Port& port1() { return port1_; }

  /// Returns false to drop. May mutate the packet in place.
  std::function<bool(int in_port, Packet&)> mutate;
  std::vector<RoceView> log;

 private:
  Port port0_;
  Port port1_;
};

class RnicTest : public ::testing::Test {
 protected:
  void build(NicType req_type, NicType resp_type,
             RoceParameters req_roce = {}, RoceParameters resp_roce = {}) {
    req = std::make_unique<Rnic>(&sim, "req", DeviceProfile::get(req_type),
                                 req_roce, MacAddress::from_u48(0xaa));
    resp = std::make_unique<Rnic>(&sim, "resp", DeviceProfile::get(resp_type),
                                  resp_roce, MacAddress::from_u48(0xbb));
    const double gbps = DeviceProfile::get(req_type).link_gbps;
    connect(req->port(), wire.port0(), LinkParams{gbps, 200});
    connect(resp->port(), wire.port1(), LinkParams{gbps, 200});
  }

  /// Creates and connects one QP pair; returns the requester-side QP.
  std::pair<QueuePair*, QueuePair*> make_qps(QpConfig cfg = {}) {
    QueuePair* rq = req->create_qp(cfg);
    QueuePair* rs = resp->create_qp(cfg);
    QpEndpointInfo req_info{kReqIp, rq->qpn(), 1000, 0x1000, 1 << 20, 0x11};
    QpEndpointInfo resp_info{kRespIp, rs->qpn(), 5000, 0x2000, 1 << 20, 0x22};
    rq->connect(req_info, resp_info);
    rs->connect(resp_info, req_info);
    return {rq, rs};
  }

  Simulator sim;
  TestWire wire{&sim};
  std::unique_ptr<Rnic> req;
  std::unique_ptr<Rnic> resp;
};

TEST_F(RnicTest, WriteMessageCompletesWithAck) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });

  rq->post_send({1, RdmaVerb::kWrite, 4096, 0x2000, 0x22});
  sim.run();

  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].wr_id, 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  // 4 data packets + 1 ACK crossed the wire.
  int data = 0, acks = 0;
  for (const auto& v : wire.log) {
    if (is_data_opcode(v.bth.opcode)) ++data;
    if (v.bth.opcode == IbOpcode::kAcknowledge) ++acks;
  }
  EXPECT_EQ(data, 4);
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(req->counters().tx_packets, 4u);
  EXPECT_EQ(resp->counters().rx_packets, 4u);
}

TEST_F(RnicTest, WritePacketizationUsesCorrectOpcodes) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.mtu = 1024});
  rq->set_completion_callback([](const WorkCompletion&) {});
  rq->post_send({1, RdmaVerb::kWrite, 3000, 0x2000, 0x22});
  sim.run();
  std::vector<IbOpcode> data_opcodes;
  for (const auto& v : wire.log) {
    if (is_data_opcode(v.bth.opcode)) data_opcodes.push_back(v.bth.opcode);
  }
  ASSERT_EQ(data_opcodes.size(), 3u);
  EXPECT_EQ(data_opcodes[0], IbOpcode::kWriteFirst);
  EXPECT_EQ(data_opcodes[1], IbOpcode::kWriteMiddle);
  EXPECT_EQ(data_opcodes[2], IbOpcode::kWriteLast);
  // First packet carries the RETH; PSNs are consecutive from the IPSN.
  EXPECT_EQ(wire.log[0].reth->dma_len, 3000u);
  EXPECT_EQ(wire.log[0].bth.psn, 1000u);
  EXPECT_EQ(wire.log[1].bth.psn, 1001u);
}

TEST_F(RnicTest, SmallWriteUsesWriteOnly) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  rq->post_send({1, RdmaVerb::kWrite, 512, 0x2000, 0x22});
  sim.run();
  ASSERT_FALSE(wire.log.empty());
  EXPECT_EQ(wire.log[0].bth.opcode, IbOpcode::kWriteOnly);
  EXPECT_TRUE(wire.log[0].bth.ack_req);
}

TEST_F(RnicTest, SendConsumesPostedReceives) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  rs->post_recv(100);
  rs->post_recv(101);
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kSendRecv, 2048, 0, 0});
  rq->post_send({2, RdmaVerb::kSendRecv, 2048, 0, 0});
  sim.run();
  EXPECT_EQ(completions.size(), 2u);
  EXPECT_EQ(wire.log[0].bth.opcode, IbOpcode::kSendFirst);
}

TEST_F(RnicTest, ReadStreamsResponsesFromResponder) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.mtu = 1024});
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kRead, 5120, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  int requests = 0, responses = 0;
  for (const auto& v : wire.log) {
    if (v.bth.opcode == IbOpcode::kReadRequest) ++requests;
    if (is_read_response(v.bth.opcode)) ++responses;
  }
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(responses, 5);
  // Response PSNs echo the requester's PSN space.
  for (const auto& v : wire.log) {
    if (v.bth.opcode == IbOpcode::kReadRespFirst) {
      EXPECT_EQ(v.bth.psn, 1000u);
    }
  }
}

TEST_F(RnicTest, DroppedWritePacketRecoversViaNack) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  int to_drop = 1;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && view->bth.psn == 1002 && to_drop-- > 0) {
      return false;  // drop the 3rd data packet once
    }
    return true;
  };
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 8192, 0x2000, 0x22});
  sim.run();

  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(resp->counters().out_of_sequence, 1u);
  EXPECT_EQ(req->counters().packet_seq_err, 1u);
  EXPECT_GE(req->counters().retransmitted_packets, 1u);
  // NAK carries the expected PSN (1002).
  bool saw_nak = false;
  for (const auto& v : wire.log) {
    if (v.bth.opcode == IbOpcode::kAcknowledge && v.aeth && v.aeth->is_nak()) {
      saw_nak = true;
      EXPECT_EQ(v.bth.psn, 1002u);
    }
  }
  EXPECT_TRUE(saw_nak);
}

TEST_F(RnicTest, NackReactionDelayGovernsRecoveryTiming) {
  build(NicType::kCx4Lx, NicType::kCx4Lx);  // 200 us reaction
  auto [rq, rs] = make_qps();
  int to_drop = 1;
  Tick nak_seen = 0, retx_seen = 0;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (!view) return true;
    if (in_port == 0 && view->bth.psn == 1002) {
      if (to_drop-- > 0) return false;
      if (retx_seen == 0) retx_seen = sim.now();
    }
    if (view->bth.opcode == IbOpcode::kAcknowledge && view->aeth &&
        view->aeth->is_nak() && nak_seen == 0) {
      nak_seen = sim.now();
    }
    return true;
  };
  rq->post_send({1, RdmaVerb::kWrite, 8192, 0x2000, 0x22});
  sim.run();
  ASSERT_GT(nak_seen, 0);
  ASSERT_GT(retx_seen, nak_seen);
  EXPECT_NEAR(static_cast<double>(retx_seen - nak_seen),
              static_cast<double>(200 * kMicrosecond),
              static_cast<double>(5 * kMicrosecond));
}

TEST_F(RnicTest, TailDropRecoversViaRtoAndCountsTimeout) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.timeout = 10});  // ~4.2 ms RTO
  int to_drop = 1;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && view->bth.opcode == IbOpcode::kWriteLast &&
        to_drop-- > 0) {
      return false;
    }
    return true;
  };
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 4096, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(req->counters().local_ack_timeout_err, 1u);
  EXPECT_GT(completions[0].completed_at, ib_timeout_to_rto(10));
}

TEST_F(RnicTest, RetryExhaustionMovesQpToError) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.timeout = 8, .retry_cnt = 2});
  wire.mutate = [&](int in_port, Packet&) {
    return in_port != 0;  // black-hole everything from the requester
  };
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRetryExceeded);
  EXPECT_TRUE(rq->in_error());
  EXPECT_EQ(req->counters().local_ack_timeout_err, 3u);  // 1 + retry_cnt

  // Posting on an errored QP flushes immediately.
  rq->post_send({2, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[1].status, WcStatus::kFlushed);
}

TEST_F(RnicTest, DuplicateDataReacknowledged) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.timeout = 8});
  // Drop the ACK so the sender retransmits a message the responder already
  // has; the responder must count the duplicate and re-acknowledge.
  int acks_to_drop = 1;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 1 && view &&
        view->bth.opcode == IbOpcode::kAcknowledge && view->aeth &&
        view->aeth->is_ack() && acks_to_drop-- > 0) {
      return false;
    }
    return true;
  };
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_GE(resp->counters().duplicate_request, 1u);
}

TEST_F(RnicTest, EcnMarkedDataTriggersCnpAndRateCut) {
  RoceParameters roce;
  roce.min_time_between_cnps = 4 * kMicrosecond;
  build(NicType::kCx5, NicType::kCx5, roce, roce);
  auto [rq, rs] = make_qps();
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && is_data_opcode(view->bth.opcode)) {
      set_ecn_ce(pkt);  // congestion upstream
    }
    return true;
  };
  rq->post_send({1, RdmaVerb::kWrite, 16 * 1024, 0x2000, 0x22});
  // Pause shortly after the first CNPs land, before the DCQCN timers can
  // recover the rate, to observe the throttled state.
  sim.run_until(4 * kMicrosecond);
  EXPECT_LT(req->rp_for(rq->qpn()).rate_gbps(), 100.0);
  sim.run();
  EXPECT_GE(resp->counters().np_ecn_marked_roce_packets, 16u);
  EXPECT_GE(resp->counters().np_cnp_sent, 1u);
  EXPECT_GE(req->counters().rp_cnp_handled, 1u);
}

TEST_F(RnicTest, E810CnpCounterStuckButCnpsFlow) {
  build(NicType::kE810, NicType::kE810);
  auto [rq, rs] = make_qps();
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && is_data_opcode(view->bth.opcode)) {
      set_ecn_ce(pkt);
    }
    return true;
  };
  rq->post_send({1, RdmaVerb::kWrite, 16 * 1024, 0x2000, 0x22});
  sim.run();
  int cnps_on_wire = 0;
  for (const auto& v : wire.log) {
    if (v.bth.opcode == IbOpcode::kCnp) ++cnps_on_wire;
  }
  EXPECT_GE(cnps_on_wire, 1);
  EXPECT_EQ(resp->counters().np_cnp_sent, 0u);  // §6.2.4 bug
  EXPECT_GE(req->counters().rp_cnp_handled, 1u);  // RP side still works
}

TEST_F(RnicTest, CorruptedPacketDroppedByIcrcCheck) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.timeout = 8});
  int to_corrupt = 1;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && view->bth.psn == 1001 && to_corrupt-- > 0) {
      corrupt_payload_bit(pkt);
    }
    return true;
  };
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 4096, 0x2000, 0x22});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(resp->counters().icrc_error_packets, 1u);
}

TEST_F(RnicTest, MigReqBitFollowsDeviceProfile) {
  build(NicType::kE810, NicType::kCx5);
  auto [rq, rs] = make_qps();
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  for (const auto& v : wire.log) {
    if (is_data_opcode(v.bth.opcode)) {
      EXPECT_FALSE(v.bth.mig_req);  // E810 sends MigReq=0 (§6.2.3)
    }
  }
}

TEST_F(RnicTest, AdaptiveRetransTimeoutsBelowConfiguredMinimum) {
  RoceParameters roce;
  roce.adaptive_retrans = true;
  build(NicType::kCx6Dx, NicType::kCx6Dx, roce, roce);
  auto [rq, rs] = make_qps(
      QpConfig{.timeout = 14, .retry_cnt = 7, .adaptive_retrans = true});
  int drops = 2;  // drop the original and the first retransmission
  std::vector<Tick> tx_times;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && is_data_opcode(view->bth.opcode)) {
      tx_times.push_back(sim.now());
      if (drops-- > 0) return false;
    }
    return true;
  };
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_GE(tx_times.size(), 3u);
  const Tick first_rto = tx_times[1] - tx_times[0];
  EXPECT_LT(first_rto, ib_timeout_to_rto(14));  // below the configured min
  EXPECT_GT(first_rto, kMillisecond);           // but in the ms range
}

TEST_F(RnicTest, NonAdaptiveRtoMatchesIbSpec) {
  build(NicType::kCx6Dx, NicType::kCx6Dx);
  auto [rq, rs] = make_qps(QpConfig{.timeout = 12, .retry_cnt = 7});
  int drops = 1;
  std::vector<Tick> tx_times;
  wire.mutate = [&](int in_port, Packet& pkt) {
    const auto view = parse_roce(pkt);
    if (in_port == 0 && view && is_data_opcode(view->bth.opcode)) {
      tx_times.push_back(sim.now());
      if (drops-- > 0) return false;
    }
    return true;
  };
  rq->post_send({1, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();
  ASSERT_GE(tx_times.size(), 2u);
  EXPECT_NEAR(static_cast<double>(tx_times[1] - tx_times[0]),
              static_cast<double>(ib_timeout_to_rto(12)),
              static_cast<double>(50 * kMicrosecond));
}

TEST_F(RnicTest, UnknownQpnPacketsIgnored) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  // Redirect a packet to a nonexistent QPN mid-flight.
  wire.mutate = [&](int in_port, Packet& pkt) {
    (void)in_port;
    (void)pkt;
    return true;
  };
  RocePacketSpec spec;
  spec.src_ip = kReqIp;
  spec.dst_ip = kRespIp;
  spec.dest_qpn = 0x123456;  // no such QP
  spec.opcode = IbOpcode::kWriteOnly;
  spec.payload_len = 64;
  req->port().send(build_roce_packet(spec));
  sim.run();
  EXPECT_EQ(resp->counters().rx_packets, 1u);  // received but not delivered
}

TEST_F(RnicTest, SendWithoutRecvDrawsRnrNakAndRecovers) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  // No receive posted yet: the responder is not ready.
  rq->post_send({1, RdmaVerb::kSendRecv, 2048, 0, 0});
  // A buffer shows up shortly after the first RNR NAK round-trips.
  sim.schedule_at(100 * kMicrosecond, [rs = rs] { rs->post_recv(0); });
  sim.run();

  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_GE(resp->counters().rnr_nak_sent, 1u);
  EXPECT_GE(req->counters().rnr_nak_received, 1u);
  // The retry waited at least the advertised RNR timer (code 12: 0.64 ms).
  EXPECT_GT(completions[0].completed_at, rnr_timer_to_wait(12));
  bool saw_rnr = false;
  for (const auto& v : wire.log) {
    if (v.bth.opcode == IbOpcode::kAcknowledge && v.aeth &&
        v.aeth->is_rnr_nak()) {
      saw_rnr = true;
      EXPECT_EQ(v.aeth->rnr_timer_code(), 12);
    }
  }
  EXPECT_TRUE(saw_rnr);
}

TEST_F(RnicTest, RnrRetriesExhaustIfReceiverNeverReady) {
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps(QpConfig{.rnr_retry = 2, .rnr_timer_code = 1});
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kSendRecv, 1024, 0, 0});
  sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kRnrRetryExceeded);
  EXPECT_TRUE(rq->in_error());
  EXPECT_EQ(req->counters().rnr_nak_received, 3u);  // initial + 2 retries
}

TEST_F(RnicTest, MixedWriteAndReadWqesOnOneQp) {
  // §3.2: verb combinations produce bi-directional data on one QP.
  build(NicType::kCx5, NicType::kCx5);
  auto [rq, rs] = make_qps();
  std::vector<WorkCompletion> completions;
  rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  rq->post_send({1, RdmaVerb::kWrite, 2048, 0x2000, 0x22});
  rq->post_send({2, RdmaVerb::kRead, 3072, 0x2000, 0x22});
  rq->post_send({3, RdmaVerb::kWrite, 1024, 0x2000, 0x22});
  sim.run();

  ASSERT_EQ(completions.size(), 3u);
  for (const auto& wc : completions) {
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
  }
  int writes = 0, read_reqs = 0, read_resps = 0;
  for (const auto& v : wire.log) {
    if (is_write(v.bth.opcode)) ++writes;
    if (v.bth.opcode == IbOpcode::kReadRequest) ++read_reqs;
    if (is_read_response(v.bth.opcode)) ++read_resps;
  }
  EXPECT_EQ(writes, 3);      // 2 + 1 packets
  EXPECT_EQ(read_reqs, 1);
  EXPECT_EQ(read_resps, 3);  // 3072 B at MTU 1024
}

TEST_F(RnicTest, QpnsAreUniquePerNic) {
  build(NicType::kCx5, NicType::kCx5);
  QueuePair* a = req->create_qp({});
  QueuePair* b = req->create_qp({});
  EXPECT_NE(a->qpn(), b->qpn());
  EXPECT_EQ(req->find_qp(a->qpn()), a);
  EXPECT_EQ(req->find_qp(b->qpn()), b);
  EXPECT_EQ(req->find_qp(0xdead), nullptr);
}

}  // namespace
}  // namespace lumina
