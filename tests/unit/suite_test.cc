// Tests for the library bug suite (src/suite) and the trace-statistics
// analyzer.
#include <gtest/gtest.h>

#include "analyzers/rate_timeline.h"
#include "analyzers/trace_stats.h"
#include "orchestrator/orchestrator.h"
#include "suite/bug_detectors.h"

namespace lumina {
namespace {

// ---------------------------------------------------------------------------
// Bug suite — spot checks (the exhaustive 4x6 matrix runs in the Table 2
// bench; here each detector is exercised once positive, once negative).
// ---------------------------------------------------------------------------

TEST(BugSuite, EtsDetectorSeparatesCx6FromCx5) {
  EXPECT_TRUE(detect_issue(KnownIssue::kNonWorkConservingEts,
                           NicType::kCx6Dx)
                  .affected);
  EXPECT_FALSE(
      detect_issue(KnownIssue::kNonWorkConservingEts, NicType::kCx5)
          .affected);
}

TEST(BugSuite, CounterDetectorSeparatesE810FromCx6) {
  const auto e810 =
      detect_issue(KnownIssue::kCounterInconsistency, NicType::kE810);
  EXPECT_TRUE(e810.affected);
  EXPECT_NE(e810.evidence.find("np_cnp_sent"), std::string::npos);
  EXPECT_FALSE(
      detect_issue(KnownIssue::kCounterInconsistency, NicType::kCx6Dx)
          .affected);
}

TEST(BugSuite, AdaptiveRetransDetectorSeparatesNvidiaFromIntel) {
  EXPECT_TRUE(detect_issue(KnownIssue::kAdaptiveRetransDeviation,
                           NicType::kCx5)
                  .affected);
  EXPECT_FALSE(detect_issue(KnownIssue::kAdaptiveRetransDeviation,
                            NicType::kE810)
                   .affected);
}

TEST(BugSuite, RunBugSuiteCoversEveryKnownIssue) {
  const auto results = run_bug_suite(NicType::kCx5);
  ASSERT_EQ(results.size(), all_known_issues().size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].issue, all_known_issues()[i]);
    EXPECT_EQ(results[i].nic, NicType::kCx5);
    EXPECT_FALSE(results[i].evidence.empty());
  }
}

TEST(BugSuite, IssueNamesMatchTable2) {
  EXPECT_EQ(to_string(KnownIssue::kNoisyNeighbor), "Noisy neighbor (6.2.2)");
  EXPECT_EQ(to_string(KnownIssue::kCnpRateLimiting),
            "CNP rate limiting (6.3)");
}

// ---------------------------------------------------------------------------
// Trace statistics
// ---------------------------------------------------------------------------

TEST(TraceStats, AccountsForEveryPacketClass) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 8192;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 14, EventType::kEcn, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  const TraceStats stats = compute_trace_stats(result.trace);
  EXPECT_EQ(stats.total_packets, result.trace.size());
  EXPECT_EQ(stats.total_packets,
            stats.data_packets + stats.ack_packets + stats.nak_packets +
                stats.cnp_packets + stats.read_requests);
  EXPECT_EQ(stats.nak_packets, 1u);
  EXPECT_GE(stats.cnp_packets, 1u);  // ECN mark + NVIDIA OOO-CNP
  EXPECT_GT(stats.span, 0);

  ASSERT_EQ(stats.flows.size(), 1u);  // one data direction
  const FlowStats& flow = stats.flows[0];
  // 16 original packets + the Go-Back-N retransmission round.
  EXPECT_GT(flow.data_packets, 16u);
  EXPECT_GE(flow.retransmitted_packets, 1u);
  EXPECT_GT(flow.throughput_gbps(), 1.0);
  EXPECT_GT(flow.inter_arrival_us.count(), 0u);
}

TEST(TraceStats, ReadTrafficShowsBothDirections) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kRead;
  cfg.traffic.message_size = 8192;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  const TraceStats stats = compute_trace_stats(result.trace);
  EXPECT_EQ(stats.read_requests, 1u);
  ASSERT_EQ(stats.flows.size(), 1u);  // responses are the only data stream
  EXPECT_EQ(stats.flows[0].flow.src_ip, result.connections[0].responder.ip);
  EXPECT_EQ(stats.flows[0].data_bytes, 8192u);
}

TEST(TraceStats, EmptyTraceIsSafe) {
  const TraceStats stats = compute_trace_stats(PacketTrace{});
  EXPECT_EQ(stats.total_packets, 0u);
  EXPECT_TRUE(stats.flows.empty());
  EXPECT_EQ(stats.span, 0);
  EXPECT_FALSE(stats.to_string().empty());
}

TEST(TraceStats, SummaryMentionsEveryFlow) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.num_connections = 2;
  cfg.traffic.message_size = 4096;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  const std::string summary = compute_trace_stats(result.trace).to_string();
  EXPECT_NE(summary.find("-> "), std::string::npos);
  EXPECT_NE(summary.find("Gbps"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rate timeline
// ---------------------------------------------------------------------------

TEST(RateTimeline, BucketsThroughputPerFlow) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 20;
  cfg.traffic.message_size = 64 * 1024;
  cfg.traffic.tx_depth = 4;
  Orchestrator::Options options;
  options.num_dumpers = 3;
  options.dumper_options.per_packet_service = 80;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();

  const auto timelines =
      compute_rate_timeline(result.trace, 10 * kMicrosecond);
  ASSERT_EQ(timelines.size(), 1u);
  const FlowTimeline& tl = timelines[0];
  EXPECT_GT(tl.points.size(), 5u);
  // Mid-run windows sit near line rate (payload share of 100 Gbps).
  EXPECT_GT(tl.peak_gbps(), 70.0);
  EXPECT_LT(tl.peak_gbps(), 100.0);
  EXPECT_GT(tl.tail_mean_gbps(3), 30.0);
  // Sparkline has one character per window.
  EXPECT_EQ(render_sparkline(tl).size(), tl.points.size());
}

TEST(RateTimeline, ThrottledFlowShowsLowerRateThanCleanFlow) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.requester().roce.min_time_between_cnps = 4 * kMicrosecond;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 256 * 1024;
  cfg.traffic.tx_depth = 2;
  // Mark every 25th packet of connection 1 only.
  for (int k = 25; k <= 1024; k += 25) {
    cfg.traffic.data_pkt_events.push_back(DataPacketEvent{
        1, static_cast<std::uint32_t>(k), EventType::kEcn, 1});
  }
  Orchestrator::Options options;
  options.num_dumpers = 3;
  options.dumper_options.per_packet_service = 80;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();

  const auto timelines =
      compute_rate_timeline(result.trace, 20 * kMicrosecond);
  ASSERT_EQ(timelines.size(), 2u);
  // Identify which timeline belongs to the marked connection.
  const auto& meta = result.connections[0];
  const FlowTimeline* marked = nullptr;
  const FlowTimeline* clean = nullptr;
  for (const auto& tl : timelines) {
    if (tl.flow.dst_qpn == meta.responder.qpn) {
      marked = &tl;
    } else {
      clean = &tl;
    }
  }
  ASSERT_NE(marked, nullptr);
  ASSERT_NE(clean, nullptr);
  EXPECT_LT(marked->tail_mean_gbps(5), clean->tail_mean_gbps(5));
}

TEST(RateTimeline, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(compute_rate_timeline(PacketTrace{}, kMicrosecond).empty());
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.message_size = 1024;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  EXPECT_TRUE(compute_rate_timeline(result.trace, 0).empty());
  const auto timelines = compute_rate_timeline(result.trace, kSecond);
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].points.size(), 1u);
}

}  // namespace
}  // namespace lumina
