// Unit tests for the sharded kernel's direct contracts: handle encoding,
// shard assignment, option validation, window/clock semantics, clamp and
// stall counters, stop-at-boundary, and single-domain equivalence with the
// plain Simulator. The cross-kernel byte-identity proof lives in
// tests/unit/sharded_differential_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_domain.h"
#include "sim/sharded_sim.h"
#include "sim/simulator.h"

namespace lumina {
namespace {

TEST(EventDomain, HandleEncodingRoundTrips) {
  const std::uint64_t local = event_domain::local_handle(37, 123456789);
  EXPECT_FALSE(event_domain::is_cross(local));
  EXPECT_EQ(event_domain::domain_of(local), 37u);
  EXPECT_EQ(event_domain::seq_of(local), 123456789u);

  const std::uint64_t cross = event_domain::cross_handle(65535, 42);
  EXPECT_TRUE(event_domain::is_cross(cross));
  EXPECT_EQ(event_domain::domain_of(cross), 65535u);
  EXPECT_EQ(event_domain::seq_of(cross), 42u);

  // Handle 0 keeps the repo-wide "never scheduled" meaning: no local
  // handle collides with it (lane ids start at 1).
  EXPECT_NE(event_domain::local_handle(0, 1), 0u);
}

TEST(ShardedSimulator, ShardAssignmentIsFixedRoundRobin) {
  ShardedSimulator::Options opt;
  opt.shards = 3;
  ShardedSimulator sim(8, opt);
  EXPECT_EQ(sim.num_domains(), 8);
  EXPECT_EQ(sim.shards(), 3);
  for (DomainId d = 0; d < 8; ++d) {
    EXPECT_EQ(sim.shard_of(d), static_cast<int>(d % 3));
  }
}

TEST(ShardedSimulator, RejectsInvalidOptions) {
  ShardedSimulator::Options opt;
  opt.shards = 0;
  EXPECT_THROW(ShardedSimulator(4, opt), std::invalid_argument);
  opt.shards = 5;  // more shards than domains
  EXPECT_THROW(ShardedSimulator(4, opt), std::invalid_argument);
  opt.shards = 1;
  opt.lookahead = 0;
  EXPECT_THROW(ShardedSimulator(4, opt), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(0), std::invalid_argument);
}

TEST(ShardedSimulator, UnknownDomainThrows) {
  ShardedSimulator sim(2);
  EXPECT_THROW(sim.schedule_on(2, 10, [] {}), std::out_of_range);
  EXPECT_THROW(sim.schedule_timer_on(7, 10, [] {}), std::out_of_range);
}

// A single-domain sharded kernel must behave exactly like the plain
// Simulator modulo handle encoding: same firing order, same clocks, same
// processed/pending counts.
TEST(ShardedSimulator, SingleDomainMatchesPlainSimulator) {
  std::vector<std::pair<int, Tick>> plain_firings;
  std::vector<std::pair<int, Tick>> sharded_firings;

  Simulator plain;
  for (int i = 0; i < 20; ++i) {
    plain.schedule_at((i * 7) % 13, [&plain, &plain_firings, i] {
      plain_firings.emplace_back(i, plain.now());
      if (i % 3 == 0) {
        plain.schedule_after(5, [&plain, &plain_firings, i] {
          plain_firings.emplace_back(100 + i, plain.now());
        });
      }
    });
  }
  plain.run_until(40);

  ShardedSimulator sharded(1);
  for (int i = 0; i < 20; ++i) {
    sharded.schedule_at((i * 7) % 13, [&sharded, &sharded_firings, i] {
      sharded_firings.emplace_back(i, sharded.now());
      if (i % 3 == 0) {
        sharded.schedule_after(5, [&sharded, &sharded_firings, i] {
          sharded_firings.emplace_back(100 + i, sharded.now());
        });
      }
    });
  }
  sharded.run_until(40);

  EXPECT_EQ(sharded_firings, plain_firings);
  EXPECT_EQ(sharded.now(), plain.now());
  EXPECT_EQ(sharded.events_processed(), plain.events_processed());
  EXPECT_EQ(sharded.pending_events(), plain.pending_events());
  EXPECT_EQ(sharded.cross_messages(), 0u);
}

TEST(ShardedSimulator, CrossSendBelowLookaheadClampsAndCounts) {
  ShardedSimulator::Options opt;
  opt.shards = 2;
  opt.lookahead = 100;
  ShardedSimulator sim(2, opt);
  Tick fired_at = -1;
  sim.schedule_on(0, 10, [&] {
    // At lane time 10, a send asking for tick 20 cannot reach another
    // domain sooner than 10 + lookahead.
    sim.schedule_on(1, 20, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 110);
  EXPECT_EQ(sim.clamped_sends(), 1u);
  EXPECT_EQ(sim.cross_messages(), 1u);
}

TEST(ShardedSimulator, LookaheadStallsCountIdleLaneWindows) {
  ShardedSimulator::Options opt;
  opt.shards = 2;
  opt.lookahead = 10;
  ShardedSimulator sim(2, opt);
  // Only domain 0 has work: every window opened leaves domain 1 stalled.
  for (int i = 0; i < 5; ++i) {
    sim.schedule_on(0, i * 100, [] {});
  }
  sim.run();
  EXPECT_EQ(sim.windows(), 5u);
  EXPECT_EQ(sim.lookahead_stalls(), 5u);
  EXPECT_EQ(sim.events_processed(), 5u);
}

// stop() exits at the window boundary: the full window completes in every
// lane first, making the cut shard-count invariant.
TEST(ShardedSimulator, StopTakesEffectAtWindowBoundary) {
  for (const int shards : {1, 2, 4}) {
    ShardedSimulator::Options opt;
    opt.shards = shards;
    opt.lookahead = 100;
    ShardedSimulator sim(4, opt);
    std::vector<int> fired(4, 0);
    // Same-window events across all domains; domain 0 stops mid-window.
    for (DomainId d = 0; d < 4; ++d) {
      const int di = static_cast<int>(d);
      sim.schedule_on(d, 10 + di, [&sim, &fired, di] {
        ++fired[static_cast<std::size_t>(di)];
        if (di == 0) sim.stop();
      });
      sim.schedule_on(d, 500, [&fired, di] {
        ++fired[static_cast<std::size_t>(di)];
      });
    }
    sim.run();
    // The stopping window (events at ticks 10..13) completed everywhere;
    // the next window (tick 500) never opened.
    EXPECT_EQ(fired, (std::vector<int>{1, 1, 1, 1})) << "shards " << shards;
    EXPECT_EQ(sim.events_processed(), 4u) << "shards " << shards;
    EXPECT_EQ(sim.pending_events(), 4u) << "shards " << shards;
  }
}

TEST(ShardedSimulator, RunUntilFillsGlobalClockAndFiresAtDeadline) {
  ShardedSimulator::Options opt;
  opt.shards = 2;
  opt.lookahead = 7;
  ShardedSimulator sim(2, opt);
  bool at_deadline = false;
  bool beyond = false;
  sim.schedule_on(1, 50, [&] { at_deadline = true; });
  sim.schedule_on(0, 51, [&] { beyond = true; });
  sim.run_until(50);
  EXPECT_TRUE(at_deadline);
  EXPECT_FALSE(beyond);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(beyond);
  EXPECT_EQ(sim.now(), 51);
}

// Cancelling a delivered cross event from a third domain routes through
// the mailbox and kills it at the next barrier.
TEST(ShardedSimulator, CrossCancelOfDeliveredEvent) {
  ShardedSimulator::Options opt;
  opt.shards = 3;
  opt.lookahead = 10;
  ShardedSimulator sim(3, opt);
  bool victim_fired = false;
  std::uint64_t victim = 0;
  sim.schedule_on(0, 5, [&] {
    // Deliver far enough out that the canceller's barrier beats it.
    victim = sim.schedule_on(1, 500, [&] { victim_fired = true; });
    sim.schedule_after(10, [&] { sim.cancel(victim); });
  });
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.cross_messages(), 1u);
  EXPECT_EQ(sim.cross_cancels(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ShardedSimulator, TopLevelCancelResolvesImmediately) {
  ShardedSimulator sim(2);
  bool fired = false;
  const std::uint64_t handle = sim.schedule_on(1, 100, [&] { fired = true; });
  EXPECT_FALSE(event_domain::is_cross(handle));  // top level injects direct
  sim.cancel(handle);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
  EXPECT_EQ(sim.cancel_requests(), 1u);
}

}  // namespace
}  // namespace lumina
