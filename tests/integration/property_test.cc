// Property-based integration tests: randomized-but-seeded workloads and
// event sets, checked against invariants that must hold for ANY
// configuration:
//
//   P1  traffic completes (no deadlock) and the capture passes integrity;
//   P2  every injected first-round drop yields exactly one recovery
//       episode, each recovered (retransmission observed);
//   P3  the trace is Go-Back-N compliant on every NIC model (§6.1);
//   P4  counters are consistent with the trace on bug-free NIC models;
//   P5  reruns with the same seed are bit-identical (reproducibility, the
//       tool's core promise).
#include <gtest/gtest.h>

#include <set>

#include "analyzers/counter_analyzer.h"
#include "analyzers/gbn_fsm.h"
#include "analyzers/retrans_perf.h"
#include "orchestrator/orchestrator.h"
#include "util/random.h"

namespace lumina {
namespace {

struct RandomScenario {
  TestConfig cfg;
  int distinct_drops = 0;
};

RandomScenario make_scenario(std::uint64_t seed) {
  Rng rng(seed);
  RandomScenario scenario;
  TestConfig& cfg = scenario.cfg;

  const NicType nics[] = {NicType::kCx5, NicType::kCx6Dx};  // bug-free paths
  cfg.requester().nic_type = nics[rng.next_below(2)];
  cfg.responder().nic_type = cfg.requester().nic_type;

  const RdmaVerb verbs[] = {RdmaVerb::kWrite, RdmaVerb::kRead,
                            RdmaVerb::kSendRecv};
  cfg.traffic.verb = verbs[rng.next_below(3)];
  cfg.traffic.num_connections = static_cast<int>(rng.next_in(1, 4));
  cfg.traffic.num_msgs_per_qp = static_cast<int>(rng.next_in(1, 4));
  cfg.traffic.message_size =
      static_cast<std::uint64_t>(rng.next_in(1, 24)) * 1024;
  cfg.traffic.mtu = 1024;
  cfg.traffic.tx_depth = static_cast<int>(rng.next_in(1, 3));
  cfg.traffic.barrier_sync = rng.next_bool(0.3);
  cfg.traffic.min_retransmit_timeout = 18;  // fast retrans stays observable

  // Random single-shot events: at most ONE drop per connection — a second
  // iter=1 drop on the same flow may never fire because the first drop's
  // retransmission round advances ITER past 1 (Fig. 3 semantics) — plus
  // some ECN marks. Keep drops off the last packet of the stream so fast
  // retransmission (not RTO) recovers them.
  const std::uint32_t total_pkts = static_cast<std::uint32_t>(
      (cfg.traffic.message_size + 1023) / 1024 *
      static_cast<std::uint32_t>(cfg.traffic.num_msgs_per_qp));
  std::set<std::pair<int, std::uint32_t>> used;
  std::set<int> dropped_conns;
  const int events = static_cast<int>(rng.next_below(4));
  for (int e = 0; e < events; ++e) {
    const int conn = static_cast<int>(rng.next_in(1, cfg.traffic.num_connections));
    if (total_pkts < 3) break;
    const auto psn =
        static_cast<std::uint32_t>(rng.next_in(1, total_pkts - 1));
    if (!used.insert({conn, psn}).second) continue;
    const bool drop = rng.next_bool(0.6) && !dropped_conns.contains(conn);
    if (drop) dropped_conns.insert(conn);
    cfg.traffic.data_pkt_events.push_back(DataPacketEvent{
        conn, psn, drop ? EventType::kDrop : EventType::kEcn, 1});
    if (drop) ++scenario.distinct_drops;
  }
  return scenario;
}

class RandomScenarioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenarioTest, InvariantsHold) {
  const RandomScenario scenario = make_scenario(GetParam());
  Orchestrator orch(scenario.cfg);
  const TestResult& result = orch.run();

  // P1: completion + integrity.
  ASSERT_TRUE(result.finished) << "seed " << GetParam();
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(),
              static_cast<std::size_t>(scenario.cfg.traffic.num_msgs_per_qp));
    EXPECT_FALSE(flow.aborted);
  }

  // P2: one recovered episode per injected drop.
  const auto episodes =
      analyze_retransmissions(result.trace, scenario.cfg.traffic.verb);
  EXPECT_EQ(episodes.size(),
            static_cast<std::size_t>(scenario.distinct_drops));
  for (const auto& ep : episodes) {
    EXPECT_TRUE(ep.retransmit_time.has_value())
        << "unrecovered drop at PSN " << ep.psn;
  }

  // P3: Go-Back-N compliance.
  const auto gbn = check_gbn_compliance(result.trace, scenario.cfg.traffic.verb);
  EXPECT_TRUE(gbn.compliant())
      << (gbn.violations.empty() ? ""
                                 : gbn.violations[0].rule + ": " +
                                       gbn.violations[0].description);

  // P4: counter consistency on bug-free models.
  std::vector<Ipv4Address> req_ips, resp_ips;
  for (const auto& c : result.connections) {
    req_ips.push_back(c.requester.ip);
    resp_ips.push_back(c.responder.ip);
  }
  const auto counters = check_counters(
      result.trace, scenario.cfg.traffic.verb, result.requester_counters(),
      result.responder_counters(), req_ips, resp_ips);
  EXPECT_TRUE(counters.consistent())
      << (counters.inconsistencies.empty()
              ? ""
              : counters.inconsistencies[0].counter + " " +
                    counters.inconsistencies[0].note);
}

TEST_P(RandomScenarioTest, RerunsAreBitIdentical) {
  const RandomScenario scenario = make_scenario(GetParam());
  Orchestrator a(scenario.cfg);
  Orchestrator b(scenario.cfg);
  const TestResult& ra = a.run();
  const TestResult& rb = b.run();
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace[i].pkt.bytes, rb.trace[i].pkt.bytes) << "packet " << i;
    EXPECT_EQ(ra.trace[i].time(), rb.trace[i].time());
  }
  EXPECT_EQ(ra.duration, rb.duration);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace lumina
