// Golden-trace regression tests: two canonical experiments — a Go-Back-N
// retransmission triggered by a data-packet drop, and CNP generation
// triggered by ECN marking — are replayed and their full artifact set
// (trace.pcap, counters, flows, integrity) compared byte-for-byte against
// goldens checked in under tests/golden/. Any behavioral drift in the
// simulated NICs, the injector, or the pcap writer shows up as a diff here.
//
// To regenerate after an intentional behavior change:
//   LUMINA_REGEN_GOLDEN=1 ./build/tests/golden_trace_test
// then review the diff of tests/golden/ before committing it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "config/test_config.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/results_io.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"

namespace lumina {
namespace {

namespace fs = std::filesystem;

// Baked in by CMake: the source-tree directory holding the goldens.
const char* golden_root() { return LUMINA_GOLDEN_DIR; }

bool regen_requested() {
  const char* env = std::getenv("LUMINA_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// TSan race-exercise mode (ci.yml): LUMINA_TEST_SHARDS > 1 replays every
/// golden scenario on the sharded kernel at that worker count instead of
/// comparing bytes. The goldens are the sequential kernel's output and the
/// two kernels legally differ in same-tick order (shard_invariance_test.cc
/// documents the contract), so this mode asserts the semantic invariants
/// and artifact production; byte identity across sharded worker counts is
/// pinned by ShardInvariance.
int test_shards() {
  const char* env = std::getenv("LUMINA_TEST_SHARDS");
  return env != nullptr ? std::atoi(env) : 1;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TestConfig gbn_drop_config() {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx6Dx;
  cfg.responder().nic_type = NicType::kCx6Dx;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  // Drop the 3rd data packet of QP connection 1: the responder NACKs and
  // the requester performs a Go-Back-N retransmission.
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  return cfg;
}

TestConfig cnp_inject_config() {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx6Dx;
  cfg.responder().nic_type = NicType::kCx6Dx;
  cfg.traffic.num_connections = 1;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  // ECN-mark three data packets: the responder's notification point must
  // emit CNPs back to the requester (subject to CNP pacing).
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 2, EventType::kEcn, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kEcn, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 8, EventType::kEcn, 1});
  return cfg;
}

/// 3-requester incast onto one responder (§3.1 generalized, §6.3): the
/// 3:1 bottleneck builds the sink-port queue past the marking threshold,
/// so the golden captures the closed-loop ECN -> CNP -> DCQCN exchange on
/// top of the schema-v2 host/connection layout (docs/topology.md).
TestConfig incast_4host_config() {
  TestConfig cfg;
  cfg.hosts.clear();
  for (int i = 0; i < 3; ++i) {
    HostConfig sender;
    sender.nic_type = NicType::kCx6Dx;
    cfg.hosts.push_back(sender);
  }
  HostConfig sink;
  sink.nic_type = NicType::kCx6Dx;
  cfg.hosts.push_back(sink);
  for (int i = 0; i < 3; ++i) {
    cfg.connections.push_back(ConnectionSpec{i, 3});
  }
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 16 * 1024;
  cfg.traffic.mtu = 1024;
  return cfg;
}

Orchestrator::Options incast_options() {
  Orchestrator::Options options;
  options.switch_options.ecn_marking_threshold_bytes = 12 * 1024;
  return options;
}

/// The examples/configs/pause_storm_incast.yaml scenario: a 3:1 incast
/// where the switch storms the first sender's ingress with 802.1Qbb pause
/// frames for 150 us mid-transfer, then resumes it — the golden pins the
/// victim's pause accounting and the recovery.
TestConfig pause_storm_incast_config() {
  TestConfig cfg;
  cfg.hosts.clear();
  for (int i = 0; i < 3; ++i) {
    HostConfig sender;
    sender.nic_type = NicType::kCx6Dx;
    cfg.hosts.push_back(sender);
  }
  HostConfig sink;
  sink.nic_type = NicType::kCx6Dx;
  cfg.hosts.push_back(sink);
  for (int i = 0; i < 3; ++i) {
    cfg.connections.push_back(ConnectionSpec{i, 3});
  }
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 16 * 1024;
  cfg.traffic.mtu = 1024;
  DataPacketEvent storm{1, 4, EventType::kPauseStorm, 1};
  storm.fault.duration = 150 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(storm);
  return cfg;
}

/// Runs the experiment and compares every artifact against the golden
/// directory, or rewrites the goldens when LUMINA_REGEN_GOLDEN is set.
void check_against_golden(const std::string& scenario, const TestConfig& cfg,
                          const Orchestrator::Options& options = {}) {
  Orchestrator::Options run_options = options;
  if (test_shards() > 1) {
    TestConfig normalized = cfg;
    normalized.normalize();
    const int num_domains = 1 + static_cast<int>(normalized.hosts.size()) +
                            options.num_dumpers;
    run_options.shards = std::min(test_shards(), num_domains);
  }
  const TestResult result = Orchestrator(cfg, run_options).run();
  ASSERT_TRUE(result.finished) << scenario;
  ASSERT_TRUE(result.integrity.ok()) << scenario << ": "
                                     << result.integrity.to_string();

  if (run_options.shards > 1) {
    // Race-exercise mode: the run held together on the worker pool (TSan
    // flags any ordering bug); prove the artifact pipeline still writes a
    // complete tree and stop short of the sequential-golden byte compare.
    const fs::path actual_dir =
        fs::temp_directory_path() /
        ("lumina_golden_sharded_" + scenario + "_" +
         std::to_string(::getpid()));
    fs::remove_all(actual_dir);
    std::string failed;
    ASSERT_TRUE(write_results(result, actual_dir.string(), &failed))
        << failed;
    std::size_t produced = 0;
    for (const auto& entry : fs::directory_iterator(actual_dir)) {
      if (entry.is_regular_file()) ++produced;
    }
    EXPECT_GE(produced, 8u) << scenario << ": sharded artifact set incomplete";
    fs::remove_all(actual_dir);
    return;
  }

  const fs::path golden_dir = fs::path(golden_root()) / scenario;
  if (regen_requested()) {
    fs::remove_all(golden_dir);
    std::string failed;
    ASSERT_TRUE(write_results(result, golden_dir.string(), &failed))
        << failed;
    GTEST_SKIP() << "regenerated goldens in " << golden_dir;
  }

  ASSERT_TRUE(fs::is_directory(golden_dir))
      << "missing goldens for " << scenario
      << "; run with LUMINA_REGEN_GOLDEN=1 to create them";

  const fs::path actual_dir =
      fs::temp_directory_path() /
      ("lumina_golden_" + scenario + "_" + std::to_string(::getpid()));
  fs::remove_all(actual_dir);
  std::string failed;
  ASSERT_TRUE(write_results(result, actual_dir.string(), &failed)) << failed;

  std::size_t compared = 0;
  for (const auto& entry : fs::directory_iterator(golden_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const fs::path actual = actual_dir / name;
    ASSERT_TRUE(fs::is_regular_file(actual))
        << scenario << ": artifact " << name << " not produced";
    std::string actual_bytes = read_file(actual);
    std::string golden_bytes = read_file(entry.path());
    if (name == "report.json") {
      // The report's "name" field carries the (temp) directory it was
      // written to; the byte-identity contract covers the deterministic
      // section (docs/telemetry.md).
      actual_bytes = telemetry::extract_deterministic_section(actual_bytes);
      golden_bytes = telemetry::extract_deterministic_section(golden_bytes);
      ASSERT_FALSE(golden_bytes.empty()) << scenario;
      // Structured diff at tolerance 0 on top of the byte compare: when
      // bytes ever drift, this names the exact metrics that moved.
      const auto diff = telemetry::diff_reports(
          telemetry::read_report_file(entry.path().string()),
          telemetry::read_report_file(actual.string()),
          telemetry::DiffOptions{});
      EXPECT_TRUE(diff.passed())
          << scenario << ": report.json metrics drifted\n"
          << telemetry::format_diff(diff);
      EXPECT_GT(diff.compared, 0u) << scenario;
    }
    EXPECT_EQ(actual_bytes, golden_bytes)
        << scenario << ": " << name
        << " drifted from golden; if intentional, regenerate with "
           "LUMINA_REGEN_GOLDEN=1 and review the diff";
    ++compared;
  }
  EXPECT_GE(compared, 8u) << scenario << ": golden set incomplete";
  fs::remove_all(actual_dir);
}

TEST(GoldenTrace, GoBackNDropMatchesGolden) {
  check_against_golden("gbn_drop", gbn_drop_config());
}

TEST(GoldenTrace, CnpInjectionMatchesGolden) {
  check_against_golden("cnp_inject", cnp_inject_config());
}

TEST(GoldenTrace, Incast4HostMatchesGolden) {
  check_against_golden("incast_4host", incast_4host_config(),
                       incast_options());
  // The multi-host artifact set: hosts beyond the classic pair get their
  // own counter files next to the aliased requester/responder ones.
  const fs::path dir = fs::path(golden_root()) / "incast_4host";
  if (fs::is_directory(dir)) {
    EXPECT_TRUE(fs::is_regular_file(dir / "requester_counters.txt"));
    EXPECT_TRUE(fs::is_regular_file(dir / "responder_counters.txt"));
    EXPECT_TRUE(fs::is_regular_file(dir / "host2_counters.txt"));
    EXPECT_TRUE(fs::is_regular_file(dir / "host3_counters.txt"));
  }
}

TEST(GoldenTrace, PauseStormIncastMatchesGolden) {
  check_against_golden("pause_storm_incast", pause_storm_incast_config());
}

// Semantic guards alongside the byte-level goldens, so a regen can't
// silently bless a trace that lost the behavior under test.
TEST(GoldenTrace, GoBackNGoldenContainsRetransmission) {
  const TestResult result = Orchestrator(gbn_drop_config()).run();
  EXPECT_GT(result.switch_counters.dropped_by_event, 0u);
  // Go-Back-N resends the dropped packet and its successors: the wire
  // carries more data packets than a loss-free run would need.
  const TestConfig clean = [] {
    TestConfig cfg = gbn_drop_config();
    cfg.traffic.data_pkt_events.clear();
    return cfg;
  }();
  const TestResult baseline = Orchestrator(clean).run();
  EXPECT_GT(result.trace.size(), baseline.trace.size());
}

TEST(GoldenTrace, CnpGoldenContainsCnps) {
  const TestResult result = Orchestrator(cnp_inject_config()).run();
  std::size_t cnps = 0;
  for (const auto& packet : result.trace) {
    if (packet.view.is_cnp()) ++cnps;
  }
  EXPECT_GT(cnps, 0u) << "ECN marks produced no CNPs";
}

TEST(GoldenTrace, IncastGoldenContainsCongestionFeedback) {
  const TestResult result =
      Orchestrator(incast_4host_config(), incast_options()).run();
  ASSERT_TRUE(result.finished);
  ASSERT_EQ(result.host_counters.size(), 4u);
  // The 3:1 bottleneck actually congested: queue-driven CE marks, and the
  // sink's notification point turned them into CNPs on the wire.
  EXPECT_GT(result.switch_counters.ecn_marked_by_queue, 0u);
  std::size_t cnps = 0;
  for (const auto& packet : result.trace) {
    if (packet.view.is_cnp()) ++cnps;
  }
  EXPECT_GT(cnps, 0u) << "incast produced no CNPs";
}

TEST(GoldenTrace, PauseStormGoldenShowsCollapseAndRecovery) {
  const TestResult result = Orchestrator(pause_storm_incast_config()).run();
  // Recovery: the resume frame reopens the priority and the whole incast
  // still completes with intact integrity.
  ASSERT_TRUE(result.finished);
  ASSERT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  // The victim (connection 1's sender = host 0, "requester") received the
  // storm and actually gated its egress.
  EXPECT_EQ(result.telemetry.counters.at("injector.pause_storms"), 1u);
  EXPECT_GT(result.telemetry.counters.at("rnic.requester.pause_frames_rx"),
            0u);
  EXPECT_GT(result.telemetry.counters.at("rnic.requester.pause_resumes_rx"),
            0u);
  EXPECT_GT(result.telemetry.counters.at("rnic.requester.paused_ns"), 0u);

  // Goodput collapse: against a storm-free run of the same incast, the
  // stormed sender's flow is measurably slower.
  const TestConfig clean = [] {
    TestConfig cfg = pause_storm_incast_config();
    cfg.traffic.data_pkt_events.clear();
    return cfg;
  }();
  const TestResult baseline = Orchestrator(clean).run();
  ASSERT_EQ(result.flows.size(), 3u);
  ASSERT_EQ(baseline.flows.size(), 3u);
  EXPECT_LT(result.flows[0].goodput_gbps(),
            baseline.flows[0].goodput_gbps());
  EXPECT_GT(result.flows[0].avg_mct_us(), baseline.flows[0].avg_mct_us());
  // And the baseline's metric set has no pause counters at all — the
  // dormant-fault byte-identity contract.
  EXPECT_EQ(baseline.telemetry.counters.count("injector.pause_storms"), 0u);
  EXPECT_EQ(
      baseline.telemetry.counters.count("rnic.requester.pause_frames_rx"),
      0u);
}

}  // namespace
}  // namespace lumina
