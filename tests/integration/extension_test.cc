// Tests for the extensions beyond the paper's stock tool:
//  * delay and reorder injection events (§7 future work),
//  * the stateful in-switch QP discovery ablation (§3.3 alternative),
//  * Table 1 result persistence (results_io),
//  * configurable ACK coalescing.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "analyzers/retrans_perf.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/results_io.h"

namespace lumina {
namespace {

TestConfig base_config() {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 1;
  cfg.traffic.num_msgs_per_qp = 1;
  cfg.traffic.message_size = 10 * 1024;
  return cfg;
}

// ---------------------------------------------------------------------------
// Delay events
// ---------------------------------------------------------------------------

TEST(DelayEvent, ShiftsOnePacketWithoutLoss) {
  TestConfig cfg = base_config();
  DataPacketEvent ev{1, 5, EventType::kDelay, 1};
  ev.delay = 30 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(ev);
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  // The receiver sees a gap and NAKs; Go-Back-N recovery (~8 us on CX5)
  // beats the 30 us hold, so the transfer completes BEFORE the delayed
  // original even arrives — which then lands as a duplicate.
  EXPECT_LT(result.flows[0].avg_mct_us(), 30.0);
  EXPECT_GE(result.responder_counters().out_of_sequence, 1u);
  EXPECT_GE(result.responder_counters().duplicate_request, 1u);
  EXPECT_TRUE(result.integrity.ok());
  // The mirrored copy is tagged with the delay event type.
  int tagged = 0;
  for (const auto& p : result.trace) {
    if (p.meta.event == EventType::kDelay) ++tagged;
  }
  EXPECT_EQ(tagged, 1);
}

TEST(DelayEvent, LongDelayBehavesLikeLossThenDuplicate) {
  // Delay beyond the NACK path: the receiver recovers via Go-Back-N, then
  // the late original arrives as a duplicate.
  TestConfig cfg = base_config();
  DataPacketEvent ev{1, 5, EventType::kDelay, 1};
  ev.delay = 100 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(ev);
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  EXPECT_GE(result.responder_counters().out_of_sequence, 1u);
  EXPECT_GE(result.responder_counters().duplicate_request, 1u);
}

TEST(DelayEvent, ParsesFromYaml) {
  const TrafficConfig cfg = load_traffic_config(parse_yaml(
      "data-pkt-events:\n"
      "- {qpn: 1, psn: 5, type: delay, delay-us: 25, iter: 1}\n"));
  ASSERT_EQ(cfg.data_pkt_events.size(), 1u);
  EXPECT_EQ(cfg.data_pkt_events[0].type, EventType::kDelay);
  EXPECT_EQ(cfg.data_pkt_events[0].delay, 25 * kMicrosecond);
}

// ---------------------------------------------------------------------------
// Reorder events
// ---------------------------------------------------------------------------

TEST(ReorderEvent, SwapsAdjacentPackets) {
  TestConfig cfg = base_config();
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kReorder, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  // Go-Back-N tolerates no reordering: packet 6 before 5 looks like a loss
  // of 5 -> NACK and a rewind, even though nothing was dropped. This is
  // exactly why lossy-RoCE debates care about reordering (§7).
  EXPECT_GE(result.responder_counters().out_of_sequence, 1u);
  EXPECT_GE(result.requester_counters().packet_seq_err, 1u);
  EXPECT_GE(result.requester_counters().retransmitted_packets, 1u);
}

TEST(ReorderEvent, TailPacketFlushedByTimeout) {
  // Reordering the LAST packet leaves no successor to swap with; the
  // safety valve flushes it after the timeout and the transfer completes.
  TestConfig cfg = base_config();
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 10, EventType::kReorder, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  // Completion waited for the flush timeout.
  EXPECT_GT(result.flows[0].avg_mct_us(),
            to_us(EventInjectorSwitch::Options{}.reorder_flush_timeout));
}

// ---------------------------------------------------------------------------
// Stateful in-switch QP discovery (ablation)
// ---------------------------------------------------------------------------

TEST(StatefulDiscovery, SingleConnectionMatchesStatelessDesign) {
  TestConfig cfg = base_config();
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});

  Orchestrator stateless(cfg);
  const TestResult& a = stateless.run();

  Orchestrator::Options options;
  options.stateful_qp_discovery = true;
  Orchestrator stateful(cfg, options);
  const TestResult& b = stateful.run();

  // Same packet dropped, same recovery shape.
  const auto ea = analyze_retransmissions(a.trace, RdmaVerb::kWrite);
  const auto eb = analyze_retransmissions(b.trace, RdmaVerb::kWrite);
  ASSERT_EQ(ea.size(), 1u);
  ASSERT_EQ(eb.size(), 1u);
  EXPECT_EQ(ea[0].iter, eb[0].iter);
  EXPECT_EQ(b.switch_counters.events_applied, 1u);
  EXPECT_EQ(stateful.injector().discovered_flows(), 1);
}

TEST(StatefulDiscovery, DiscoversEveryConcurrentFlow) {
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 4;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{2, 3, EventType::kDrop, 1});
  Orchestrator::Options options;
  options.stateful_qp_discovery = true;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(orch.injector().discovered_flows(), 4);
  // The rule fired on *a* connection — but with concurrent flows the
  // binding follows arrival order, not config order (the design weakness
  // the paper's stateless approach avoids).
  EXPECT_EQ(result.switch_counters.events_applied, 1u);
}

TEST(StatefulDiscovery, BindsRulesByFlowArrivalOrder) {
  // The relative rule names "connection 2". The stateless design would
  // join that with config connection 2's announced metadata; the stateful
  // ablation instead binds it to the SECOND flow to appear on the wire —
  // the arrival-order dependence §3.3 argues against.
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{2, 3, EventType::kDrop, 1});
  Orchestrator::Options options;
  options.stateful_qp_discovery = true;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(orch.injector().discovered_flows(), 2);
  EXPECT_EQ(result.switch_counters.dropped_by_event, 1u);

  // Reconstruct the order in which distinct data flows first crossed the
  // switch, straight from the mirrored trace.
  std::vector<FlowKey> arrival;
  for (const auto& p : result.trace) {
    if (!p.is_data()) continue;
    const FlowKey flow{p.view.src_ip, p.view.dst_ip, p.view.bth.dest_qpn};
    if (std::find(arrival.begin(), arrival.end(), flow) == arrival.end()) {
      arrival.push_back(flow);
    }
  }
  ASSERT_GE(arrival.size(), 2u);

  // Exactly one recovery episode, and it sits on the second-ARRIVING flow.
  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].flow, arrival[1]);
  // The untouched flow is the first arrival.
  EXPECT_NE(episodes[0].flow, arrival[0]);
}

// ---------------------------------------------------------------------------
// Egress-queue ECN marking (closed-loop congestion extension)
// ---------------------------------------------------------------------------

TEST(QueueEcnMarking, MarksOnlyWhenBottleneckBuilds) {
  // Same-speed hosts: no queue buildup, no marks even with the threshold
  // armed.
  TestConfig cfg = base_config();
  cfg.traffic.message_size = 256 * 1024;
  Orchestrator::Options options;
  options.switch_options.ecn_marking_threshold_bytes = 50 * 1024;
  {
    Orchestrator orch(cfg, options);
    const TestResult& result = orch.run();
    ASSERT_TRUE(result.finished);
    EXPECT_EQ(result.switch_counters.ecn_marked_by_queue, 0u);
  }
  // 100 GbE sender into a 40 GbE receiver: the bottleneck port queue
  // crosses the threshold and data packets get CE.
  cfg.responder().nic_type = NicType::kCx4Lx;
  cfg.requester().roce.min_time_between_cnps = 4 * kMicrosecond;
  cfg.responder().roce.min_time_between_cnps = 4 * kMicrosecond;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.switch_counters.ecn_marked_by_queue, 0u);
  EXPECT_GE(result.responder_counters().np_ecn_marked_roce_packets, 1u);
  EXPECT_GE(result.requester_counters().rp_cnp_handled, 1u);
  // Marks keep iCRC valid (ECN is a masked field) so nothing is discarded.
  EXPECT_EQ(result.responder_counters().icrc_error_packets, 0u);
}

// ---------------------------------------------------------------------------
// Verb combinations (§3.2: bi-directional traffic)
// ---------------------------------------------------------------------------

TEST(VerbCombination, SendPlusReadParsesFromYaml) {
  const TrafficConfig cfg =
      load_traffic_config(parse_yaml("rdma-verb: send+read\n"));
  EXPECT_EQ(cfg.verb, RdmaVerb::kSendRecv);
  ASSERT_TRUE(cfg.secondary_verb.has_value());
  EXPECT_EQ(*cfg.secondary_verb, RdmaVerb::kRead);
  EXPECT_THROW(load_traffic_config(parse_yaml("rdma-verb: send+atomic\n")),
               YamlError);
}

TEST(VerbCombination, SendPlusReadGeneratesBidirectionalData) {
  TestConfig cfg = base_config();
  cfg.traffic.verb = RdmaVerb::kSendRecv;
  cfg.traffic.secondary_verb = RdmaVerb::kRead;
  cfg.traffic.num_msgs_per_qp = 6;  // 3 Sends + 3 Reads, alternating
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 6u);
  EXPECT_TRUE(result.integrity.ok());

  const auto& meta = result.connections[0];
  int req_to_resp_data = 0;
  int resp_to_req_data = 0;
  for (const auto& p : result.trace) {
    if (!p.is_data()) continue;
    if (p.view.src_ip == meta.requester.ip) ++req_to_resp_data;
    if (p.view.src_ip == meta.responder.ip) ++resp_to_req_data;
  }
  // 3 x 10 KB Sends requester->responder, 3 x 10 KB of Read responses
  // responder->requester.
  EXPECT_EQ(req_to_resp_data, 30);
  EXPECT_EQ(resp_to_req_data, 30);
}

TEST(VerbCombination, WritePlusSendSharesOnePsnStream) {
  TestConfig cfg = base_config();
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.secondary_verb = RdmaVerb::kSendRecv;
  cfg.traffic.num_msgs_per_qp = 4;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 4u);
  // PSNs in the requester->responder stream are strictly consecutive
  // across the interleaved Write and Send messages.
  const auto& meta = result.connections[0];
  std::uint32_t expected = meta.requester.ipsn;
  for (const auto& p : result.trace) {
    if (!p.is_data() || p.view.src_ip != meta.requester.ip) continue;
    EXPECT_EQ(p.view.bth.psn, expected);
    expected = psn_add(expected, 1);
  }
}

// ---------------------------------------------------------------------------
// Results persistence
// ---------------------------------------------------------------------------

TEST(ResultsIo, WritesAllTable1Artifacts) {
  TestConfig cfg = base_config();
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  const std::string dir = ::testing::TempDir() + "/lumina_results_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(write_results(result, dir));

  for (const char* name :
       {"trace.pcap", "integrity.txt", "requester_counters.txt",
        "responder_counters.txt", "switch_counters.txt", "flows.csv",
        "connections.txt"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
    EXPECT_GT(std::filesystem::file_size(dir + "/" + name), 0u) << name;
  }

  // Spot-check contents.
  std::ifstream flows(dir + "/flows.csv");
  std::string line;
  std::getline(flows, line);
  EXPECT_NE(line.find("completion_time_us"), std::string::npos);
  int rows = 0;
  while (std::getline(flows, line)) ++rows;
  EXPECT_EQ(rows, 4);  // 2 connections x 2 messages

  std::ifstream counters(dir + "/requester_counters.txt");
  bool found_seq_err = false;
  while (std::getline(counters, line)) {
    if (line.rfind("packet_seq_err 1", 0) == 0) found_seq_err = true;
  }
  EXPECT_TRUE(found_seq_err);
  std::filesystem::remove_all(dir);
}

TEST(ResultsIo, FailsCleanlyOnBadPath) {
  TestResult result;
  EXPECT_FALSE(write_results(result, "/proc/definitely/not/writable"));
}

// ---------------------------------------------------------------------------
// Configurable ACK coalescing
// ---------------------------------------------------------------------------

TEST(AckCoalescing, DefaultIntervalAcksEverySixteenthPacket) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.message_size = 64 * 1024;  // 64 packets, one message
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  int acks = 0;
  for (const auto& p : result.trace) {
    if (p.view.bth.opcode == IbOpcode::kAcknowledge && p.view.aeth &&
        p.view.aeth->is_ack()) {
      ++acks;
    }
  }
  // Coalescing=16 over 64 packets: 3 intra-message ACKs (the 64th packet's
  // coalesced slot is superseded by the per-message ACK) + the final ACK.
  EXPECT_GE(acks, 4);
  EXPECT_LE(acks, 6);
}

}  // namespace
}  // namespace lumina
