// Determinism property test for the telemetry report: the serialized
// deterministic section must be byte-identical across repeated runs and
// across campaign --jobs counts. This is the contract that lets the CI
// bench gate compare a fresh report against a checked-in baseline
// generated on a different machine.
#include <gtest/gtest.h>

#include <string>

#include "campaign/campaign.h"
#include "campaign/campaign_config.h"
#include "orchestrator/orchestrator.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"

namespace lumina {
namespace {

constexpr const char* kCampaignYaml = R"(campaign:
  name: report-determinism
  seed: 77
  runs:
    - kind: experiment
      name: drop-sweep
      repeat: 2
      sweep:
        message-size: [4096, 10240]
      config:
        traffic:
          rdma-verb: write
          num-msgs-per-qp: 3
          mtu: 1024
          data-pkt-events:
          - {qpn: 1, psn: 2, type: drop, iter: 1}
)";

std::string deterministic_bytes_at_jobs(const Campaign& campaign, int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seed = campaign.seed;
  const CampaignReport report = run_campaign(campaign, options);
  EXPECT_EQ(report.ok_count(), report.runs.size());
  return telemetry::serialize_deterministic(
      campaign_report_json(report).deterministic);
}

TEST(ReportDeterminism, CampaignReportIsByteIdenticalAcrossJobCounts) {
  const Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  ASSERT_EQ(campaign.runs.size(), 4u);

  const std::string jobs1 = deterministic_bytes_at_jobs(campaign, 1);
  const std::string jobs4 = deterministic_bytes_at_jobs(campaign, 4);
  const std::string jobs8 = deterministic_bytes_at_jobs(campaign, 8);

  // Sanity: the report is non-trivial and integer-valued metrics landed.
  EXPECT_GT(jobs1.size(), 1000u);
  EXPECT_NE(jobs1.find("\"campaign.runs_total\": 4"), std::string::npos);
  EXPECT_NE(jobs1.find("sim.events_processed"), std::string::npos);
  EXPECT_NE(jobs1.find("rnic.requester.retransmits"), std::string::npos);

  EXPECT_EQ(jobs1, jobs4) << "jobs=1 vs jobs=4";
  EXPECT_EQ(jobs1, jobs8) << "jobs=1 vs jobs=8";
}

// A schema-v2 multi-host run inside a campaign: 3 senders incast onto one
// sink, swept over two message sizes (docs/topology.md).
constexpr const char* kIncastCampaignYaml = R"(campaign:
  name: incast-determinism
  seed: 99
  runs:
    - kind: experiment
      name: incast-3to1
      repeat: 2
      sweep:
        message-size: [8192, 16384]
      config:
        hosts:
        - nic: {type: cx6}
        - nic: {type: cx6}
        - nic: {type: cx6}
        - name: sink
          nic: {type: cx6}
        connections:
        - {src: 0, dst: sink}
        - {src: 1, dst: sink}
        - {src: 2, dst: sink}
        traffic:
          rdma-verb: write
          num-msgs-per-qp: 2
          mtu: 1024
          data-pkt-events:
          - {qpn: 2, psn: 3, type: ecn, iter: 1}
)";

TEST(ReportDeterminism, IncastCampaignIsByteIdenticalAcrossJobCounts) {
  const Campaign campaign = load_campaign(parse_yaml(kIncastCampaignYaml));
  ASSERT_EQ(campaign.runs.size(), 4u);

  const std::string jobs1 = deterministic_bytes_at_jobs(campaign, 1);
  const std::string jobs4 = deterministic_bytes_at_jobs(campaign, 4);
  const std::string jobs8 = deterministic_bytes_at_jobs(campaign, 8);

  EXPECT_GT(jobs1.size(), 1000u);
  // Per-host NIC metrics exist for hosts beyond the classic pair.
  EXPECT_NE(jobs1.find("rnic.host2."), std::string::npos);
  EXPECT_NE(jobs1.find("rnic.sink."), std::string::npos);
  EXPECT_EQ(jobs1, jobs4) << "jobs=1 vs jobs=4";
  EXPECT_EQ(jobs1, jobs8) << "jobs=1 vs jobs=8";
}

/// The same contract through the CI gate's own oracle: diff_reports at
/// tolerance 0 must find zero differing metrics between job counts.
TEST(ReportDeterminism, StructuredDiffAtToleranceZeroAcrossJobCounts) {
  const Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  const auto report_at_jobs = [&](int jobs) {
    CampaignOptions options;
    options.jobs = jobs;
    options.seed = campaign.seed;
    return campaign_report_json(run_campaign(campaign, options));
  };
  const telemetry::RunReport jobs1 = report_at_jobs(1);
  const telemetry::RunReport jobs8 = report_at_jobs(8);

  const auto diff =
      telemetry::diff_reports(jobs1, jobs8, telemetry::DiffOptions{});
  EXPECT_TRUE(diff.passed()) << telemetry::format_diff(diff);
  EXPECT_EQ(diff.diffs.size(), 0u);
  EXPECT_GT(diff.compared, 50u);
}

TEST(ReportDeterminism, RepeatedRunsProduceIdenticalSnapshots) {
  TestConfig cfg;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});

  Orchestrator first(cfg);
  Orchestrator second(cfg);
  const std::string a =
      telemetry::serialize_deterministic(first.run().telemetry);
  const std::string b =
      telemetry::serialize_deterministic(second.run().telemetry);
  EXPECT_GT(a.size(), 500u);
  EXPECT_EQ(a, b);
}

TEST(ReportDeterminism, TelemetryCanBeDisabled) {
  TestConfig cfg;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.mtu = 1024;
  Orchestrator::Options options;
  options.enable_telemetry = false;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  EXPECT_TRUE(result.finished);
  EXPECT_TRUE(result.telemetry.empty());
  EXPECT_EQ(orch.metrics(), nullptr);
  EXPECT_EQ(orch.trace_sink(), nullptr);
}

TEST(ReportDeterminism, TraceEventsLandOnExpectedTracks) {
  TestConfig cfg;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  orch.run();

  bool saw_injector = false;
  bool saw_responder = false;
  bool saw_host = false;
  for (const auto& ev : orch.trace_sink()->events_in_order()) {
    saw_injector |= ev.tid == telemetry::kTrackInjector;
    saw_responder |= ev.tid == telemetry::kTrackResponder;
    saw_host |= ev.tid == telemetry::kTrackHost;
  }
  EXPECT_TRUE(saw_injector) << "no injector events traced";
  EXPECT_TRUE(saw_responder) << "no responder NACK/CNP events traced";
  EXPECT_TRUE(saw_host) << "no host completion events traced";
}

}  // namespace
}  // namespace lumina
