// Parameterized end-to-end sweeps: every NIC model x every verb x several
// loss scenarios, all through the full orchestrator pipeline, asserting
// protocol invariants that must hold regardless of device profile.
#include <gtest/gtest.h>

#include <tuple>

#include "analyzers/cnp_analyzer.h"
#include "analyzers/gbn_fsm.h"
#include "analyzers/retrans_perf.h"
#include "orchestrator/orchestrator.h"

namespace lumina {
namespace {

using NicVerb = std::tuple<NicType, RdmaVerb>;

std::string nic_verb_name(const ::testing::TestParamInfo<NicVerb>& info) {
  return to_string(std::get<0>(info.param)) + "_" +
         to_string(std::get<1>(info.param));
}

TestConfig make_config(NicType nic, RdmaVerb verb) {
  TestConfig cfg;
  cfg.requester().nic_type = nic;
  cfg.responder().nic_type = nic;
  cfg.traffic.verb = verb;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 8192;
  cfg.traffic.mtu = 1024;
  // Above every device's fast-retransmission path (E810 read: 83 ms).
  cfg.traffic.min_retransmit_timeout = 18;
  return cfg;
}

class NicVerbSweep : public ::testing::TestWithParam<NicVerb> {};

TEST_P(NicVerbSweep, CleanTransferCompletesWithIntegrity) {
  const auto [nic, verb] = GetParam();
  Orchestrator orch(make_config(nic, verb));
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 3u);
    EXPECT_FALSE(flow.aborted);
  }
  // No retransmissions on a clean path.
  EXPECT_EQ(result.requester_counters().retransmitted_packets, 0u);
  EXPECT_EQ(result.responder_counters().retransmitted_packets, 0u);
  EXPECT_EQ(result.requester_counters().local_ack_timeout_err, 0u);
  // The trace passes the Go-Back-N specification check.
  const auto gbn = check_gbn_compliance(result.trace, verb);
  EXPECT_TRUE(gbn.compliant());
  EXPECT_EQ(gbn.episodes_seen, 0u);
}

TEST_P(NicVerbSweep, SingleDropRecoversAndStaysCompliant) {
  const auto [nic, verb] = GetParam();
  TestConfig cfg = make_config(nic, verb);
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 3u);
    EXPECT_FALSE(flow.aborted);
  }
  // All NICs pass the FSM-based retransmission-logic check (§6.1: "all the
  // RNICs pass our FSM-based retransmission logic check").
  const auto gbn = check_gbn_compliance(result.trace, verb);
  EXPECT_TRUE(gbn.compliant())
      << (gbn.violations.empty() ? "" : gbn.violations[0].description);
  EXPECT_GE(gbn.episodes_seen, 1u);

  // Exactly one recovery episode is attributable to the injected drop.
  const auto episodes = analyze_retransmissions(result.trace, verb);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_TRUE(episodes[0].retransmit_time.has_value());
}

TEST_P(NicVerbSweep, DoubleDropViaIterStillRecovers) {
  const auto [nic, verb] = GetParam();
  TestConfig cfg = make_config(nic, verb);
  cfg.traffic.num_msgs_per_qp = 1;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 4, EventType::kDrop, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 4, EventType::kDrop, 2});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  const auto episodes = analyze_retransmissions(result.trace, verb);
  EXPECT_EQ(episodes.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllNicsVerbs, NicVerbSweep,
    ::testing::Combine(::testing::Values(NicType::kCx4Lx, NicType::kCx5,
                                         NicType::kCx6Dx, NicType::kE810),
                       ::testing::Values(RdmaVerb::kWrite, RdmaVerb::kRead,
                                         RdmaVerb::kSendRecv)),
    nic_verb_name);

// ---------------------------------------------------------------------------
// Device-behavior spot checks through the full pipeline
// ---------------------------------------------------------------------------

TEST(DeviceBehavior, RetransmissionLatencyOrderingMatchesFig8and9) {
  const auto total_recovery_us = [](NicType nic, RdmaVerb verb) {
    TestConfig cfg = make_config(nic, verb);
    cfg.traffic.num_connections = 1;
    cfg.traffic.num_msgs_per_qp = 1;
    cfg.traffic.message_size = 32 * 1024;
    cfg.traffic.data_pkt_events.push_back(
        DataPacketEvent{1, 8, EventType::kDrop, 1});
    Orchestrator orch(cfg);
    const auto episodes =
        analyze_retransmissions(orch.run().trace, verb);
    return episodes.empty() || !episodes[0].total_latency()
               ? -1.0
               : to_us(*episodes[0].total_latency());
  };

  const double cx5_write = total_recovery_us(NicType::kCx5, RdmaVerb::kWrite);
  const double cx4_write = total_recovery_us(NicType::kCx4Lx, RdmaVerb::kWrite);
  const double e810_write = total_recovery_us(NicType::kE810, RdmaVerb::kWrite);
  const double cx4_read = total_recovery_us(NicType::kCx4Lx, RdmaVerb::kRead);
  const double e810_read = total_recovery_us(NicType::kE810, RdmaVerb::kRead);

  EXPECT_LT(cx5_write, 15.0);              // ~4-8 us
  EXPECT_GT(cx4_write, 100.0);             // ~200 us
  EXPECT_GT(cx4_write, 10 * cx5_write);
  EXPECT_GT(e810_write, cx5_write);
  EXPECT_GT(cx4_read, 250.0);              // ~300 us
  EXPECT_GT(e810_read, 50'000.0);          // ~83 ms
}

TEST(DeviceBehavior, E810IgnoresCnpIntervalConfiguration) {
  const auto cnp_count = [](NicType nic) {
    TestConfig cfg = make_config(nic, RdmaVerb::kWrite);
    cfg.requester().roce.dcqcn_rp_enable = false;
    cfg.responder().roce.dcqcn_rp_enable = false;
    cfg.requester().roce.min_time_between_cnps = 0;  // CNP per packet
    cfg.responder().roce.min_time_between_cnps = 0;
    cfg.traffic.num_connections = 1;
    cfg.traffic.num_msgs_per_qp = 1;
    cfg.traffic.message_size = 32 * 1024;
    for (int k = 1; k <= 32; ++k) {
      cfg.traffic.data_pkt_events.push_back(DataPacketEvent{
          1, static_cast<std::uint32_t>(k), EventType::kEcn, 1});
    }
    Orchestrator orch(cfg);
    return analyze_cnps(orch.run().trace).cnps.size();
  };
  EXPECT_EQ(cnp_count(NicType::kCx5), 32u);  // honors "no limit"
  EXPECT_LT(cnp_count(NicType::kE810), 8u);  // hidden 50 us interval
}

TEST(DeviceBehavior, NvidiaEmitsCnpAlongsideNackOnOutOfOrder) {
  // Lossy-RoCE extension: a drop (no ECN anywhere) still produces a CNP
  // from the NVIDIA NP.
  TestConfig cfg = make_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.num_connections = 1;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const auto report = analyze_cnps(orch.run().trace);
  EXPECT_GE(report.cnps.size(), 1u);
  EXPECT_EQ(report.ecn_marked_data_packets, 0u);
}

TEST(DeviceBehavior, E810DoesNotEmitCnpOnOutOfOrder) {
  TestConfig cfg = make_config(NicType::kE810, RdmaVerb::kWrite);
  cfg.traffic.num_connections = 1;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  EXPECT_EQ(analyze_cnps(orch.run().trace).cnps.size(), 0u);
}

// ---------------------------------------------------------------------------
// YAML end-to-end: the paper's configs drive a run unchanged
// ---------------------------------------------------------------------------

TEST(YamlEndToEnd, Listing1And2DriveACompleteRun) {
  const YamlNode root = parse_yaml(R"(
requester:
  nic:
    type: cx5
    ip-list: [10.0.0.2/24, 10.0.0.12/24]
  roce-parameters:
    dcqcn-rp-enable: False
    dcqcn-np-enable: True
    min-time-between-cnps: 0
    adaptive-retrans: False
responder:
  nic:
    type: cx5
    ip-list: [10.0.1.2/24]
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 10
  mtu: 1024
  message-size: 10240
  multi-gid: true
  barrier-sync: true
  tx-depth: 1
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:
  - {qpn: 1, psn: 4, type: ecn, iter: 1}
  - {qpn: 2, psn: 5, type: drop, iter: 1}
  - {qpn: 2, psn: 5, type: drop, iter: 2}
)");
  Orchestrator orch(load_test_config(root));
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_EQ(result.flows[0].completed(), 10u);
  EXPECT_EQ(result.flows[1].completed(), 10u);

  // The ECN mark produced a CNP, and the NVIDIA lossy-RoCE extension adds
  // one more for the out-of-order episode on connection 2.
  const auto cnps = analyze_cnps(result.trace);
  EXPECT_EQ(cnps.ecn_marked_data_packets, 1u);
  EXPECT_EQ(cnps.cnps.size(), 2u);
  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].iter, 1u);
  EXPECT_EQ(episodes[1].iter, 2u);
}

}  // namespace
}  // namespace lumina
