// Shard-invariance golden test (docs/simulator.md, "Sharded execution"):
// the incast_4host and pause_storm_incast scenarios are replayed at every
// accepted --shards value and their full artifact set — trace.pcap,
// counters, flows, integrity, report.json — compared byte-for-byte
// against the checked-in goldens (tests/golden/). The shard count must be
// a pure throughput knob: the only permitted report difference is the
// shard-plan metric block itself (topology.* / sim.shard.*), which is
// dormant at shards == 1 and pinned here against the deterministic
// ShardPlan at every other count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/test_config.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/results_io.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "topology/testbed.h"

namespace lumina {
namespace {

namespace fs = std::filesystem;

const char* golden_root() { return LUMINA_GOLDEN_DIR; }

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// True for serialized metric lines of the shard-plan block — the only
/// metrics allowed to differ from the shards == 1 golden.
bool is_shard_metric_line(const std::string& line) {
  return line.find("\"topology.") != std::string::npos ||
         line.find("\"sim.shard.") != std::string::npos;
}

std::string strip_shard_lines(const std::string& text) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (is_shard_metric_line(line)) continue;
    // Dropping the block's last serialized neighbor shifts JSON comma
    // placement; normalize trailing commas so only values are compared.
    if (!line.empty() && line.back() == ',') line.pop_back();
    out += line;
    out += '\n';
  }
  return out;
}

/// Drops the shard-plan block from a parsed snapshot so the structured
/// diff against the golden runs at tolerance 0 with no missing-key noise.
void erase_shard_metrics(telemetry::MetricsSnapshot* snapshot) {
  const auto is_shard_key = [](const std::string& key) {
    return key.rfind("topology.", 0) == 0 || key.rfind("sim.shard.", 0) == 0;
  };
  std::erase_if(snapshot->counters,
                [&](const auto& kv) { return is_shard_key(kv.first); });
  std::erase_if(snapshot->gauges,
                [&](const auto& kv) { return is_shard_key(kv.first); });
  std::erase_if(snapshot->histograms,
                [&](const auto& kv) { return is_shard_key(kv.first); });
}

// The two golden scenarios, identical to golden_trace_test.cc: a 3:1
// ECN-marking incast and the same incast under a mid-transfer pause storm.
TestConfig incast_4host_config() {
  TestConfig cfg;
  cfg.hosts.clear();
  for (int i = 0; i < 3; ++i) {
    HostConfig sender;
    sender.nic_type = NicType::kCx6Dx;
    cfg.hosts.push_back(sender);
  }
  HostConfig sink;
  sink.nic_type = NicType::kCx6Dx;
  cfg.hosts.push_back(sink);
  for (int i = 0; i < 3; ++i) {
    cfg.connections.push_back(ConnectionSpec{i, 3});
  }
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 16 * 1024;
  cfg.traffic.mtu = 1024;
  return cfg;
}

Orchestrator::Options incast_options() {
  Orchestrator::Options options;
  options.switch_options.ecn_marking_threshold_bytes = 12 * 1024;
  return options;
}

TestConfig pause_storm_incast_config() {
  TestConfig cfg = incast_4host_config();
  cfg.traffic.num_msgs_per_qp = 3;
  DataPacketEvent storm{1, 4, EventType::kPauseStorm, 1};
  storm.fault.duration = 150 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(storm);
  return cfg;
}

/// Runs `cfg` at one shard count and returns the artifact tree, with
/// report.json reduced to its deterministic section minus the shard-plan
/// block. Also pins the emitted shard metrics against the ShardPlan.
std::map<std::string, std::string> run_at_shards(
    const std::string& scenario, const TestConfig& cfg,
    const Orchestrator::Options& base_options, int shards) {
  Orchestrator::Options options = base_options;
  options.shards = shards;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  EXPECT_TRUE(result.finished) << scenario << " shards " << shards;
  EXPECT_TRUE(result.integrity.ok()) << scenario << " shards " << shards;

  const ShardPlan& plan = orch.testbed().shard_plan();
  EXPECT_EQ(plan.shards, shards);
  const auto& gauges = result.telemetry.gauges;
  if (shards == 1) {
    // Dormant: the single-kernel metric set is byte-identical to the
    // pre-sharding tree, so the goldens never see the plan block.
    EXPECT_EQ(gauges.count("topology.shards"), 0u) << scenario;
  } else {
    EXPECT_EQ(gauges.at("topology.shards"), shards) << scenario;
    EXPECT_EQ(gauges.at("topology.event_domains"), plan.num_domains())
        << scenario;
    EXPECT_EQ(gauges.at("sim.shard.lookahead_ns"), plan.lookahead)
        << scenario;
    for (int i = 0; i < orch.num_hosts(); ++i) {
      const std::string key = "topology." + orch.nic(i).name() + ".shard";
      EXPECT_EQ(gauges.at(key), plan.shard_of(plan.host_domain(i)))
          << scenario << " shards " << shards << " host " << i;
    }
  }

  const fs::path dir =
      fs::temp_directory_path() /
      ("lumina_shard_inv_" + scenario + "_s" + std::to_string(shards) + "_" +
       std::to_string(::getpid()));
  fs::remove_all(dir);
  std::string failed;
  EXPECT_TRUE(write_results(result, dir.string(), &failed)) << failed;

  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::string bytes = read_file(entry.path());
    if (name == "report.json") {
      bytes = strip_shard_lines(
          telemetry::extract_deterministic_section(bytes));
      EXPECT_FALSE(bytes.empty()) << scenario << " shards " << shards;

      // Structured report diff against the golden at tolerance 0: when
      // the byte compare below ever fails, this names the exact metrics.
      telemetry::RunReport actual =
          telemetry::read_report_file(entry.path().string());
      erase_shard_metrics(&actual.deterministic);
      const telemetry::RunReport golden = telemetry::read_report_file(
          (fs::path(golden_root()) / scenario / "report.json").string());
      const auto diff =
          telemetry::diff_reports(golden, actual, telemetry::DiffOptions{});
      EXPECT_TRUE(diff.passed())
          << scenario << " shards " << shards << ": report drifted\n"
          << telemetry::format_diff(diff);
      EXPECT_GT(diff.compared, 0u) << scenario;
    }
    files[name] = std::move(bytes);
  }
  fs::remove_all(dir);
  return files;
}

/// Sweeps every accepted shard count and asserts all artifact trees are
/// byte-identical to the checked-in golden (trace.pcap included — the
/// trace digest contract at tolerance 0).
void check_shard_invariance(const std::string& scenario, const TestConfig& cfg,
                            const Orchestrator::Options& options) {
  const fs::path golden_dir = fs::path(golden_root()) / scenario;
  ASSERT_TRUE(fs::is_directory(golden_dir))
      << "missing goldens for " << scenario
      << "; run golden_trace_test with LUMINA_REGEN_GOLDEN=1 first";

  TestConfig normalized = cfg;
  normalized.normalize();
  const int num_domains =
      1 + static_cast<int>(normalized.hosts.size()) + options.num_dumpers;

  for (int shards = 1; shards <= num_domains; ++shards) {
    const auto tree = run_at_shards(scenario, cfg, options, shards);
    std::size_t compared = 0;
    for (const auto& entry : fs::directory_iterator(golden_dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      const auto it = tree.find(name);
      ASSERT_NE(it, tree.end())
          << scenario << " shards " << shards << ": missing " << name;
      std::string golden_bytes = read_file(entry.path());
      if (name == "report.json") {
        golden_bytes = strip_shard_lines(
            telemetry::extract_deterministic_section(golden_bytes));
      }
      EXPECT_EQ(it->second, golden_bytes)
          << scenario << " shards " << shards << ": " << name
          << " differs — the shard count leaked into an artifact";
      ++compared;
    }
    EXPECT_GE(compared, 8u) << scenario << ": golden set incomplete";
  }
}

TEST(ShardInvariance, Incast4HostMatchesGoldenAtEveryShardCount) {
  check_shard_invariance("incast_4host", incast_4host_config(),
                         incast_options());
}

TEST(ShardInvariance, PauseStormIncastMatchesGoldenAtEveryShardCount) {
  check_shard_invariance("pause_storm_incast", pause_storm_incast_config(),
                         Orchestrator::Options{});
}

// A shard count the topology cannot satisfy is a configuration error, not
// a silent clamp: the orchestrator refuses to build the testbed.
TEST(ShardInvariance, RejectsShardCountsBeyondTheDomainSpace) {
  Orchestrator::Options options = incast_options();
  options.shards = 99;
  EXPECT_THROW(Orchestrator(incast_4host_config(), options),
               std::invalid_argument);
  options.shards = 0;
  EXPECT_THROW(Orchestrator(incast_4host_config(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace lumina
