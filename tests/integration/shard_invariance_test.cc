// Shard-invariance test for the testbed cutover (docs/simulator.md,
// "Sharded execution"). The kernel contract it pins:
//
//  * shards == 1 runs the sequential Simulator, and its artifact tree —
//    trace.pcap, counters, flows, integrity, report.json — is
//    byte-identical to the checked-in goldens (tests/golden/). The
//    goldens ARE the sequential kernel's output.
//  * shards >= 2 runs ShardedSimulator, whose barrier merge orders
//    same-tick events by content (when, origin domain, origin sequence)
//    rather than by global schedule id. That canonical order makes every
//    sharded count byte-identical to every OTHER sharded count — the
//    worker count is a pure throughput knob — but not to the sequential
//    kernel, whose same-tick interleave depends on schedule order. The
//    two kernels legally diverge by at most same-tick reordering inside
//    one lookahead window (observed: a single MTU serialization slot).
//  * The sequential kernel therefore serves as a differential ORACLE for
//    the sharded family: every counter (packets, retransmissions, ECN
//    marks, CNPs, events processed) matches exactly, every gauge except
//    the kernel-shape sim.queue_depth_max (global high-water vs summed
//    per-lane high-waters) matches exactly, and every histogram matches
//    on bucket population — only sub-bucket order statistics (sum/min/
//    max) may shift by the window-local reordering.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "config/test_config.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/results_io.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "topology/testbed.h"

namespace lumina {
namespace {

namespace fs = std::filesystem;

const char* golden_root() { return LUMINA_GOLDEN_DIR; }

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// True for serialized metric lines of the shard-plan block — the only
/// metrics allowed to differ between two sharded-run reports (the plan
/// records the *requested* shard count).
bool is_shard_metric_line(const std::string& line) {
  return line.find("\"topology.") != std::string::npos ||
         line.find("\"sim.shard.") != std::string::npos;
}

std::string strip_shard_lines(const std::string& text) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (is_shard_metric_line(line)) continue;
    // Dropping the block's last serialized neighbor shifts JSON comma
    // placement; normalize trailing commas so only values are compared.
    if (!line.empty() && line.back() == ',') line.pop_back();
    out += line;
    out += '\n';
  }
  return out;
}

/// Drops the shard-plan block from a parsed snapshot so structured diffs
/// run at tolerance 0 with no missing-key noise.
void erase_shard_metrics(telemetry::MetricsSnapshot* snapshot) {
  const auto is_shard_key = [](const std::string& key) {
    return key.rfind("topology.", 0) == 0 || key.rfind("sim.shard.", 0) == 0;
  };
  std::erase_if(snapshot->counters,
                [&](const auto& kv) { return is_shard_key(kv.first); });
  std::erase_if(snapshot->gauges,
                [&](const auto& kv) { return is_shard_key(kv.first); });
  std::erase_if(snapshot->histograms,
                [&](const auto& kv) { return is_shard_key(kv.first); });
}

// The two golden scenarios, identical to golden_trace_test.cc: a 3:1
// ECN-marking incast and the same incast under a mid-transfer pause storm.
TestConfig incast_4host_config() {
  TestConfig cfg;
  cfg.hosts.clear();
  for (int i = 0; i < 3; ++i) {
    HostConfig sender;
    sender.nic_type = NicType::kCx6Dx;
    cfg.hosts.push_back(sender);
  }
  HostConfig sink;
  sink.nic_type = NicType::kCx6Dx;
  cfg.hosts.push_back(sink);
  for (int i = 0; i < 3; ++i) {
    cfg.connections.push_back(ConnectionSpec{i, 3});
  }
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 16 * 1024;
  cfg.traffic.mtu = 1024;
  return cfg;
}

Orchestrator::Options incast_options() {
  Orchestrator::Options options;
  options.switch_options.ecn_marking_threshold_bytes = 12 * 1024;
  return options;
}

TestConfig pause_storm_incast_config() {
  TestConfig cfg = incast_4host_config();
  cfg.traffic.num_msgs_per_qp = 3;
  DataPacketEvent storm;
  storm.qpn = 1;
  storm.psn = 4;
  storm.type = EventType::kPauseStorm;
  storm.fault.duration = 150 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(storm);
  return cfg;
}

// The stateful fault vocabulary in one two-host run — the in-test twin of
// examples/configs/fault_vocabulary.yaml (duplicate, Gilbert–Elliott
// burst loss, a hold-queued link flap, and an overtaking delay). No
// golden tree exists for it; it rides the sharded-family and oracle
// comparisons only.
TestConfig fault_vocabulary_config() {
  TestConfig cfg;
  cfg.traffic.num_connections = 4;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 4;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  DataPacketEvent duplicate;
  duplicate.qpn = 1;
  duplicate.psn = 3;
  duplicate.type = EventType::kDuplicate;
  cfg.traffic.data_pkt_events.push_back(duplicate);
  DataPacketEvent burst;
  burst.qpn = 2;
  burst.psn = 4;
  burst.type = EventType::kBurstLoss;
  burst.fault.duration = 40 * kMicrosecond;
  burst.fault.ge_p = 0.2;
  burst.fault.ge_r = 0.5;
  cfg.traffic.data_pkt_events.push_back(burst);
  DataPacketEvent flap;
  flap.qpn = 3;
  flap.psn = 2;
  flap.type = EventType::kLinkFlap;
  flap.fault.duration = 12 * kMicrosecond;
  flap.fault.flap_drops_queued = false;
  cfg.traffic.data_pkt_events.push_back(flap);
  DataPacketEvent delayed;
  delayed.qpn = 4;
  delayed.psn = 2;
  delayed.type = EventType::kDelay;
  delayed.delay = 8 * kMicrosecond;
  cfg.traffic.data_pkt_events.push_back(delayed);
  return cfg;
}

/// Everything one run leaves behind that the invariance sweep compares.
struct RunArtifacts {
  /// Artifact tree keyed by filename; report.json is reduced to its
  /// deterministic section minus the shard-plan block.
  std::map<std::string, std::string> files;
  telemetry::MetricsSnapshot metrics;
  std::size_t trace_packets = 0;
  std::size_t flows = 0;
};

/// Runs `cfg` at one shard count, pins the emitted shard-plan metrics
/// against the deterministic ShardPlan, and returns the artifacts.
RunArtifacts run_at_shards(const std::string& scenario, const TestConfig& cfg,
                           const Orchestrator::Options& base_options,
                           int shards) {
  Orchestrator::Options options = base_options;
  options.shards = shards;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  EXPECT_TRUE(result.finished) << scenario << " shards " << shards;
  EXPECT_TRUE(result.integrity.ok()) << scenario << " shards " << shards;

  const ShardPlan& plan = orch.testbed().shard_plan();
  EXPECT_EQ(plan.shards, shards);
  EXPECT_EQ(orch.testbed().is_sharded(), shards > 1) << scenario;
  const auto& gauges = result.telemetry.gauges;
  if (shards == 1) {
    // Dormant: the single-kernel metric set is byte-identical to the
    // pre-sharding tree, so the goldens never see the plan block.
    EXPECT_EQ(gauges.count("topology.shards"), 0u) << scenario;
  } else {
    EXPECT_EQ(gauges.at("topology.shards"), shards) << scenario;
    EXPECT_EQ(gauges.at("topology.event_domains"), plan.num_domains())
        << scenario;
    EXPECT_EQ(gauges.at("sim.shard.lookahead_ns"), plan.lookahead)
        << scenario;
    for (int i = 0; i < orch.num_hosts(); ++i) {
      const std::string key = "topology." + orch.nic(i).name() + ".shard";
      EXPECT_EQ(gauges.at(key), plan.shard_of(plan.host_domain(i)))
          << scenario << " shards " << shards << " host " << i;
    }
  }

  const fs::path dir =
      fs::temp_directory_path() /
      ("lumina_shard_inv_" + scenario + "_s" + std::to_string(shards) + "_" +
       std::to_string(::getpid()));
  fs::remove_all(dir);
  std::string failed;
  EXPECT_TRUE(write_results(result, dir.string(), &failed)) << failed;

  RunArtifacts out;
  out.metrics = result.telemetry;
  out.trace_packets = result.trace.size();
  out.flows = result.flows.size();
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::string bytes = read_file(entry.path());
    if (name == "report.json") {
      bytes = strip_shard_lines(
          telemetry::extract_deterministic_section(bytes));
      EXPECT_FALSE(bytes.empty()) << scenario << " shards " << shards;
    }
    out.files[name] = std::move(bytes);
  }
  fs::remove_all(dir);
  return out;
}

/// The sequential run must reproduce the checked-in golden tree
/// byte-for-byte (trace.pcap included — the trace-digest contract at
/// tolerance 0).
void check_sequential_matches_golden(const std::string& scenario,
                                     const RunArtifacts& seq) {
  const fs::path golden_dir = fs::path(golden_root()) / scenario;
  ASSERT_TRUE(fs::is_directory(golden_dir))
      << "missing goldens for " << scenario
      << "; run golden_trace_test with LUMINA_REGEN_GOLDEN=1 first";

  std::size_t compared = 0;
  for (const auto& entry : fs::directory_iterator(golden_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const auto it = seq.files.find(name);
    ASSERT_NE(it, seq.files.end())
        << scenario << " shards 1: missing " << name;
    std::string golden_bytes = read_file(entry.path());
    if (name == "report.json") {
      golden_bytes = strip_shard_lines(
          telemetry::extract_deterministic_section(golden_bytes));
      // Structured diff at tolerance 0 first: when the byte compare below
      // ever fails, this names the exact metrics.
      telemetry::MetricsSnapshot actual = seq.metrics;
      erase_shard_metrics(&actual);
      const telemetry::RunReport golden =
          telemetry::read_report_file(entry.path().string());
      telemetry::RunReport actual_report;
      actual_report.deterministic = actual;
      const auto diff = telemetry::diff_reports(golden, actual_report,
                                                telemetry::DiffOptions{});
      EXPECT_TRUE(diff.passed())
          << scenario << " shards 1: report drifted\n"
          << telemetry::format_diff(diff);
      EXPECT_GT(diff.compared, 0u) << scenario;
    }
    EXPECT_EQ(it->second, golden_bytes)
        << scenario << " shards 1: " << name
        << " differs from the checked-in golden";
    ++compared;
  }
  EXPECT_GE(compared, 8u) << scenario << ": golden set incomplete";
}

/// Differential oracle: the sequential kernel and the sharded family must
/// agree on every counter, every gauge but the kernel-shape queue-depth
/// high-water, and every histogram's bucket population. Divergence beyond
/// that means the cutover changed semantics, not just same-tick order.
void check_oracle_equivalence(const std::string& scenario,
                              const RunArtifacts& seq,
                              const RunArtifacts& sharded) {
  EXPECT_EQ(seq.trace_packets, sharded.trace_packets) << scenario;
  EXPECT_EQ(seq.flows, sharded.flows) << scenario;

  telemetry::MetricsSnapshot a = seq.metrics;
  telemetry::MetricsSnapshot b = sharded.metrics;
  erase_shard_metrics(&a);
  erase_shard_metrics(&b);

  EXPECT_EQ(a.counters, b.counters)
      << scenario << ": a counter diverged between the kernels";

  // Kernel-shape gauges (sim.queue_depth*): the sequential kernel tracks
  // one global queue's high-water, the sharded kernel sums per-lane
  // high-waters. They stay in the sharded-family byte compare (invariant
  // across worker counts) but not in the cross-kernel oracle — the same
  // carve-out report_diff --ignore-kernel-shape applies.
  std::erase_if(a.gauges, [](const auto& kv) {
    return telemetry::is_kernel_shape_metric(kv.first);
  });
  std::erase_if(b.gauges, [](const auto& kv) {
    return telemetry::is_kernel_shape_metric(kv.first);
  });
  EXPECT_EQ(a.gauges, b.gauges)
      << scenario << ": a gauge diverged between the kernels";

  ASSERT_EQ(a.histograms.size(), b.histograms.size()) << scenario;
  for (const auto& [name, ha] : a.histograms) {
    const auto it = b.histograms.find(name);
    ASSERT_NE(it, b.histograms.end()) << scenario << ": missing " << name;
    const telemetry::HistogramSnapshot& hb = it->second;
    EXPECT_EQ(ha.bounds, hb.bounds) << scenario << ": " << name;
    EXPECT_EQ(ha.counts, hb.counts)
        << scenario << ": " << name
        << " bucket population diverged between the kernels";
    EXPECT_EQ(ha.count, hb.count) << scenario << ": " << name;
    // sum/min/max are order statistics inside a bucket; same-tick
    // reordering within one lookahead window may legally shift them.
  }
}

/// The end-to-end cutover matrix for one scenario: sequential vs golden
/// (when one is checked in), byte-identity across every sharded count,
/// and the sequential-oracle differential.
void check_shard_invariance(const std::string& scenario, const TestConfig& cfg,
                            const Orchestrator::Options& options,
                            bool has_golden) {
  TestConfig normalized = cfg;
  normalized.normalize();
  const int num_domains =
      1 + static_cast<int>(normalized.hosts.size()) + options.num_dumpers;
  ASSERT_GE(num_domains, 3) << scenario;

  const RunArtifacts seq = run_at_shards(scenario, cfg, options, 1);
  if (has_golden) check_sequential_matches_golden(scenario, seq);

  // The sharded family: every worker count must produce the same bytes.
  // shards == 2 is the baseline; 3..num_domains must match it on every
  // artifact (report.json reduced to the deterministic section minus the
  // shard-plan block, which records the requested count).
  const RunArtifacts baseline = run_at_shards(scenario, cfg, options, 2);
  EXPECT_GE(baseline.files.size(), 8u) << scenario;
  for (int shards = 3; shards <= num_domains; ++shards) {
    const RunArtifacts tree = run_at_shards(scenario, cfg, options, shards);
    ASSERT_EQ(tree.files.size(), baseline.files.size())
        << scenario << " shards " << shards;
    for (const auto& [name, bytes] : baseline.files) {
      const auto it = tree.files.find(name);
      ASSERT_NE(it, tree.files.end())
          << scenario << " shards " << shards << ": missing " << name;
      EXPECT_EQ(it->second, bytes)
          << scenario << " shards " << shards << ": " << name
          << " differs — the worker count leaked into an artifact";
    }
  }

  check_oracle_equivalence(scenario, seq, baseline);
}

TEST(ShardInvariance, Incast4HostCutoverMatrix) {
  check_shard_invariance("incast_4host", incast_4host_config(),
                         incast_options(), /*has_golden=*/true);
}

TEST(ShardInvariance, PauseStormIncastCutoverMatrix) {
  check_shard_invariance("pause_storm_incast", pause_storm_incast_config(),
                         Orchestrator::Options{}, /*has_golden=*/true);
}

TEST(ShardInvariance, FaultVocabularyCutoverMatrix) {
  check_shard_invariance("fault_vocabulary", fault_vocabulary_config(),
                         Orchestrator::Options{}, /*has_golden=*/false);
}

// A shard count the topology cannot satisfy is a configuration error, not
// a silent clamp: the orchestrator refuses to build the testbed. Zero is
// the auto sentinel — the testbed resolves it to
// min(hardware_threads, num_domains) and records the resolved value.
TEST(ShardInvariance, RejectsShardCountsBeyondTheDomainSpace) {
  Orchestrator::Options options = incast_options();
  options.shards = 99;
  EXPECT_THROW(Orchestrator(incast_4host_config(), options),
               std::invalid_argument);
}

TEST(ShardInvariance, AutoResolvesToHardwareBoundedShardCount) {
  Orchestrator::Options options = incast_options();
  options.shards = 0;
  Orchestrator orch(incast_4host_config(), options);
  const ShardPlan& plan = orch.testbed().shard_plan();
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int expected = std::min(hw, plan.num_domains());
  EXPECT_EQ(plan.shards, expected);
  EXPECT_EQ(orch.testbed().spec().shards, expected);
  EXPECT_EQ(orch.testbed().is_sharded(), expected > 1);
}

}  // namespace
}  // namespace lumina
