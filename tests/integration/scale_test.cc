// Robustness sweeps: 24-bit PSN wraparound in live transfers, MTU
// variations, many-QP scale, and long-running stability.
#include <gtest/gtest.h>

#include "analyzers/gbn_fsm.h"
#include "orchestrator/orchestrator.h"
#include "rnic/rnic.h"

namespace lumina {
namespace {

// ---------------------------------------------------------------------------
// PSN wraparound: a transfer whose PSN stream crosses 2^24 - 1 -> 0.
// The orchestrator draws IPSNs below 2^22, so wrap is exercised with
// directly wired RNICs (the rnic_test harness pattern).
// ---------------------------------------------------------------------------

class WireNode : public Node {
 public:
  explicit WireNode(Simulator* sim)
      : port0_(sim, this, 0), port1_(sim, this, 1) {}
  void handle_packet(int in_port, Packet pkt) override {
    const auto view = parse_roce(pkt);
    if (view && drop_psn && view->bth.psn == *drop_psn &&
        is_data_opcode(view->bth.opcode) && drops_left > 0) {
      --drops_left;
      return;
    }
    (in_port == 0 ? port1_ : port0_).send(std::move(pkt));
  }
  std::string name() const override { return "wire"; }
  Port& port0() { return port0_; }
  Port& port1() { return port1_; }

  std::optional<std::uint32_t> drop_psn;
  int drops_left = 0;

 private:
  Port port0_;
  Port port1_;
};

struct WrapHarness {
  Simulator sim;
  WireNode wire{&sim};
  std::unique_ptr<Rnic> req;
  std::unique_ptr<Rnic> resp;
  QueuePair* rq = nullptr;
  QueuePair* rs = nullptr;

  void build(std::uint32_t req_ipsn, RdmaVerb /*verb*/) {
    req = std::make_unique<Rnic>(&sim, "req",
                                 DeviceProfile::get(NicType::kCx5),
                                 RoceParameters{}, MacAddress::from_u48(0xaa));
    resp = std::make_unique<Rnic>(&sim, "resp",
                                  DeviceProfile::get(NicType::kCx5),
                                  RoceParameters{}, MacAddress::from_u48(0xbb));
    connect(req->port(), wire.port0(), LinkParams{100.0, 200});
    connect(resp->port(), wire.port1(), LinkParams{100.0, 200});
    rq = req->create_qp({});
    rs = resp->create_qp({});
    QpEndpointInfo req_info{Ipv4Address::from_octets(10, 0, 0, 1), rq->qpn(),
                            req_ipsn, 0x1000, 1 << 20, 0x11};
    QpEndpointInfo resp_info{Ipv4Address::from_octets(10, 0, 0, 2), rs->qpn(),
                             9000, 0x2000, 1 << 20, 0x22};
    rq->connect(req_info, resp_info);
    rs->connect(resp_info, req_info);
  }
};

class PsnWrapTest : public ::testing::TestWithParam<RdmaVerb> {};

TEST_P(PsnWrapTest, TransferAcrossWrapCompletes) {
  WrapHarness h;
  // 32 packets starting 10 before the wrap point.
  h.build(psn_add(0, -10), GetParam());
  std::vector<WorkCompletion> completions;
  h.rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  if (GetParam() == RdmaVerb::kSendRecv) {
    for (int i = 0; i < 2; ++i) h.rs->post_recv(static_cast<std::uint64_t>(i));
  }
  h.rq->post_send({1, GetParam(), 16 * 1024, 0x2000, 0x22});
  h.rq->post_send({2, GetParam(), 16 * 1024, 0x2000, 0x22});
  h.sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(completions[1].status, WcStatus::kSuccess);
}

TEST_P(PsnWrapTest, LossRecoveryAcrossWrap) {
  WrapHarness h;
  h.build(psn_add(0, -5), GetParam());
  // Drop the packet exactly at PSN 0 (the wrap point) once.
  h.wire.drop_psn = 0;
  h.wire.drops_left = 1;
  std::vector<WorkCompletion> completions;
  h.rq->set_completion_callback(
      [&](const WorkCompletion& wc) { completions.push_back(wc); });
  if (GetParam() == RdmaVerb::kSendRecv) h.rs->post_recv(0);
  h.rq->post_send({1, GetParam(), 16 * 1024, 0x2000, 0x22});
  h.sim.run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  const auto& counters = GetParam() == RdmaVerb::kRead
                             ? h.resp->counters()
                             : h.req->counters();
  EXPECT_GE(counters.retransmitted_packets, 1u);
}

INSTANTIATE_TEST_SUITE_P(Verbs, PsnWrapTest,
                         ::testing::Values(RdmaVerb::kWrite, RdmaVerb::kRead,
                                           RdmaVerb::kSendRecv));

// ---------------------------------------------------------------------------
// MTU sweep
// ---------------------------------------------------------------------------

class MtuSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MtuSweepTest, TransfersAndRecoversAtEveryMtu) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 20 * 1024;
  cfg.traffic.mtu = GetParam();
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 2, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_EQ(result.flows[0].completed(), 2u);
  // Packet sizes in the trace respect the MTU.
  for (const auto& p : result.trace) {
    if (p.is_data()) {
      EXPECT_LE(p.view.payload_len, GetParam());
    }
  }
  const auto gbn = check_gbn_compliance(result.trace, RdmaVerb::kWrite);
  EXPECT_TRUE(gbn.compliant());
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweepTest,
                         ::testing::Values(256u, 512u, 1024u, 2048u, 4096u));

// ---------------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------------

TEST(Scale, SixtyFourConnectionsComplete) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 64;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 8192;
  cfg.traffic.barrier_sync = true;
  Orchestrator::Options options;
  options.num_dumpers = 3;
  options.dumper_options.per_packet_service = 80;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 3u);
  }
  // Aggregate goodput is close to fair sharing: every flow within 3x of
  // every other (round-robin egress arbitration).
  double min_gput = 1e9, max_gput = 0;
  for (const auto& flow : result.flows) {
    min_gput = std::min(min_gput, flow.goodput_gbps());
    max_gput = std::max(max_gput, flow.goodput_gbps());
  }
  EXPECT_LT(max_gput, 3 * min_gput);
}

TEST(Scale, ManyEventsAcrossManyFlows) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx5;
  cfg.responder().nic_type = NicType::kCx5;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 16;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 16 * 1024;
  // One mark and one drop per connection. The mark comes FIRST in PSN
  // order: a drop rewinds the stream into round 2, so a later iter=1 rule
  // would never fire (Fig. 3 ITER semantics).
  for (int c = 1; c <= 16; ++c) {
    cfg.traffic.data_pkt_events.push_back(DataPacketEvent{
        c, static_cast<std::uint32_t>(c), EventType::kEcn, 1});
    cfg.traffic.data_pkt_events.push_back(DataPacketEvent{
        c, static_cast<std::uint32_t>(16 + c), EventType::kDrop, 1});
  }
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_EQ(result.switch_counters.events_applied, 32u);
  EXPECT_EQ(result.switch_counters.dropped_by_event, 16u);
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 2u);
    EXPECT_FALSE(flow.aborted);
  }
}

TEST(Scale, LongRunRemainsStable) {
  TestConfig cfg;
  cfg.requester().nic_type = NicType::kCx6Dx;
  cfg.responder().nic_type = NicType::kCx6Dx;
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_connections = 2;
  cfg.traffic.num_msgs_per_qp = 200;
  cfg.traffic.message_size = 32 * 1024;
  cfg.traffic.tx_depth = 2;
  Orchestrator::Options options;
  options.num_dumpers = 3;
  options.dumper_options.per_packet_service = 80;
  Orchestrator orch(cfg, options);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok());
  EXPECT_EQ(result.flows[0].completed(), 200u);
  EXPECT_EQ(result.flows[1].completed(), 200u);
  // 12800 data packets + ACKs, all mirrored and reconstructed.
  EXPECT_GT(result.trace.size(), 13000u);
}

}  // namespace
}  // namespace lumina
