// Determinism contract of fuzz campaigns (docs/fuzzing.md): thread count
// is a pure throughput knob (corpora and the deterministic report section
// are byte-identical for any --jobs), and an interrupted hunt resumed from
// its checkpoints converges to the same final corpora as an uninterrupted
// one — the FuzzCorpusState carries the Rng across the boundary.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzz_campaign.h"

namespace lumina {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCampaignYaml = R"(fuzz-campaign:
  name: scenario-hunt
  target: scenario
  nic: cx5
  hosts: 3
  shards: 2
  pool-size: 2
  max-iterations: 2
  seed: 2023
  corpus-dir: corpus
  fitness:
    - {metric: mct-mean, weight: 1.0}
    - {metric: injector.dropped_by_event, weight: 25}
    - {metric: sum:.retransmitted_packets, weight: 5}
)";

std::string scratch_dir(const std::string& tag) {
  const auto dir =
      fs::temp_directory_path() /
      ("lumina_fuzz_campaign_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

TEST(FuzzCampaign, LoaderParsesSpecAndValidatesEagerly) {
  const FuzzCampaignSpec spec = load_fuzz_campaign(parse_yaml(kCampaignYaml));
  EXPECT_EQ(spec.name, "scenario-hunt");
  EXPECT_EQ(spec.target, "scenario");
  EXPECT_EQ(spec.nic, NicType::kCx5);
  EXPECT_EQ(spec.scenario_hosts, 3);
  EXPECT_EQ(spec.shards, 2);
  EXPECT_EQ(spec.seed, 2023u);
  EXPECT_EQ(spec.fuzzer.pool_size, 2);
  EXPECT_EQ(spec.fuzzer.max_iterations, 2);
  EXPECT_EQ(spec.corpus_dir, "corpus");
  ASSERT_EQ(spec.fitness.size(), 3u);
  EXPECT_EQ(spec.fitness[1].weight, 25.0);

  // Bad specs fail at load time, before any simulation starts.
  EXPECT_THROW(
      load_fuzz_campaign(parse_yaml("fuzz-campaign:\n  target: nope\n")),
      YamlError);
  EXPECT_THROW(load_fuzz_campaign(parse_yaml(
                   "fuzz-campaign:\n  fitness:\n    - bogus-metric\n")),
               YamlError);
  EXPECT_THROW(load_fuzz_campaign(parse_yaml("traffic:\n  mtu: 1024\n")),
               YamlError);
}

TEST(FuzzCampaign, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const FuzzCampaignSpec spec = load_fuzz_campaign(parse_yaml(kCampaignYaml));

  CampaignOptions jobs1{1, spec.seed};
  CampaignOptions jobs4{4, spec.seed};
  const FuzzCampaignRunReport a = run_fuzz_campaign_spec(spec, jobs1);
  const FuzzCampaignRunReport b = run_fuzz_campaign_spec(spec, jobs4);

  ASSERT_EQ(a.shards.size(), 2u);
  ASSERT_EQ(b.shards.size(), 2u);
  EXPECT_TRUE(a.all_done());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    // Every shard ran its full budget (pool 2 + 2 mutations) or stopped
    // early on an anomaly; either way the corpus bytes must match.
    EXPECT_GT(a.shards[i].state.steps_done, 0) << "shard " << i;
    EXPECT_FALSE(a.shards[i].corpus.empty()) << "shard " << i;
    EXPECT_EQ(a.shards[i].corpus, b.shards[i].corpus) << "shard " << i;
  }
  EXPECT_EQ(a.anomaly_shard, b.anomaly_shard);

  // The deterministic report section is the byte-comparable summary.
  const auto report_a = fuzz_campaign_report_json(a);
  const auto report_b = fuzz_campaign_report_json(b);
  EXPECT_EQ(telemetry::serialize_deterministic(report_a.deterministic),
            telemetry::serialize_deterministic(report_b.deterministic));
  EXPECT_EQ(report_a.deterministic.counters.at("fuzz.shards"), 2u);
  EXPECT_GT(report_a.deterministic.counters.at("fuzz.steps_total"), 0u);
}

TEST(FuzzCampaign, InterruptedAndResumedHuntMatchesUninterrupted) {
  const FuzzCampaignSpec spec = load_fuzz_campaign(parse_yaml(kCampaignYaml));
  const CampaignOptions options{2, spec.seed};

  const FuzzCampaignRunReport uninterrupted =
      run_fuzz_campaign_spec(spec, options);
  ASSERT_TRUE(uninterrupted.all_done());

  // Budgeted hunts: one Algorithm 1 step per shard per invocation, each
  // checkpointing to disk and resuming from what the previous wrote.
  FuzzCampaignSpec budgeted = spec;
  budgeted.step_budget = 1;
  const std::string dir = scratch_dir("resume");
  FuzzCampaignRunReport last;
  int invocations = 0;
  bool resumed_any = false;
  do {
    const auto resume = load_fuzz_corpora(dir, budgeted.shards);
    for (const auto& state : resume) {
      resumed_any |= state.has_value();
    }
    last = run_fuzz_campaign_spec(budgeted, options, resume);
    std::string failed;
    ASSERT_TRUE(write_fuzz_corpora(last, dir, &failed)) << failed;
    ASSERT_LT(++invocations, 32) << "hunt failed to converge";
  } while (!last.all_done());

  EXPECT_GT(invocations, 1);  // the budget actually interrupted the hunt
  EXPECT_TRUE(resumed_any);
  ASSERT_EQ(last.shards.size(), uninterrupted.shards.size());
  for (std::size_t i = 0; i < last.shards.size(); ++i) {
    EXPECT_TRUE(last.shards[i].resumed) << "shard " << i;
    EXPECT_EQ(last.shards[i].corpus, uninterrupted.shards[i].corpus)
        << "shard " << i;
  }
  EXPECT_EQ(last.anomaly_shard, uninterrupted.anomaly_shard);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace lumina
