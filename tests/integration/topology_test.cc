// Integration tests for the topology layer (src/topology) and the k->1
// incast scenario it enables: a declarative TestbedSpec instantiated into
// N RNICs around the event-injector switch, and a 3-requester incast onto
// one responder whose congestion feedback reproduces the per-device CNP
// coalescing behaviors of §6.3 (NVIDIA's documented 4 us minimum CNP
// interval vs E810's hidden, unconfigurable ~50 us).
#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzers/cnp_analyzer.h"
#include "analyzers/counter_analyzer.h"
#include "config/test_config.h"
#include "orchestrator/orchestrator.h"
#include "rnic/device_profile.h"
#include "telemetry/trace.h"
#include "topology/testbed.h"

namespace lumina {
namespace {

/// k senders incast onto one sink host; every sender drives one write
/// connection into the sink.
TestConfig incast_config(int senders, NicType sender_nic, NicType sink_nic) {
  TestConfig cfg;
  cfg.hosts.clear();
  for (int i = 0; i < senders; ++i) {
    HostConfig host;
    host.nic_type = sender_nic;
    cfg.hosts.push_back(host);
  }
  HostConfig sink;
  sink.nic_type = sink_nic;
  cfg.hosts.push_back(sink);
  for (int i = 0; i < senders; ++i) {
    cfg.connections.push_back(ConnectionSpec{i, senders});
  }
  cfg.traffic.verb = RdmaVerb::kWrite;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.message_size = 64 * 1024;
  cfg.traffic.mtu = 1024;
  return cfg;
}

/// Marks data packets RED-style once the switch egress queue toward the
/// sink crosses the threshold — the closed-loop congestion that makes the
/// incast generate CNP streams.
Orchestrator::Options ecn_marking_options() {
  Orchestrator::Options options;
  options.switch_options.ecn_marking_threshold_bytes = 30 * 1024;
  return options;
}

// ---------------------------------------------------------------------------
// Testbed builder
// ---------------------------------------------------------------------------

TEST(Testbed, BuildsDeclaredTopology) {
  TestConfig cfg = incast_config(3, NicType::kCx6Dx, NicType::kE810);
  cfg.normalize();
  TestbedSpec spec;
  spec.hosts = cfg.hosts;
  Testbed testbed(std::move(spec));

  ASSERT_EQ(testbed.num_hosts(), 4);
  // Hosts 0/1 answer to the classic role names (QPN seeds and metric
  // prefixes depend on them); later hosts are host<i>.
  EXPECT_EQ(testbed.nic(0).name(), "requester");
  EXPECT_EQ(testbed.nic(1).name(), "responder");
  EXPECT_EQ(testbed.nic(2).name(), "host2");
  EXPECT_EQ(testbed.nic(3).name(), "host3");
  // Port layout: host i on switch port i, dumpers behind the hosts.
  EXPECT_EQ(testbed.host_port(2), 2);
  EXPECT_EQ(testbed.dumper_port(0), 4);
  EXPECT_EQ(testbed.dumper_port(1), 5);
  EXPECT_EQ(testbed.dumpers().size(), 2u);
  // Per-host profiles took: host 3 is the Intel NIC.
  EXPECT_EQ(testbed.nic(3).profile().type, NicType::kE810);
  EXPECT_NE(testbed.nic(0).mac().to_u48(), testbed.nic(2).mac().to_u48());
  EXPECT_NE(testbed.nic(2).mac().to_u48(), testbed.nic(3).mac().to_u48());
}

TEST(Testbed, RejectsDegenerateSpecs) {
  TestbedSpec spec;  // zero hosts
  EXPECT_THROW(Testbed{std::move(spec)}, std::invalid_argument);
  TestbedSpec one;
  one.hosts.resize(1);
  EXPECT_THROW(Testbed{std::move(one)}, std::invalid_argument);
}

TEST(Testbed, TelemetryTracksAreDenseAndLegacyCompatible) {
  // Hosts 0/1 keep the historical requester/responder track IDs (byte
  // compatibility of two-host chrome traces); hosts beyond get dense IDs
  // from kTrackDynamicBase up.
  static_assert(telemetry::nic_track(0) == telemetry::kTrackRequester);
  static_assert(telemetry::nic_track(1) == telemetry::kTrackResponder);
  static_assert(telemetry::nic_track(2) == telemetry::kTrackDynamicBase);
  static_assert(telemetry::nic_track(3) == telemetry::kTrackDynamicBase + 1);
  static_assert(telemetry::nic_track(4) == telemetry::kTrackDynamicBase + 2);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// 4-host incast end-to-end
// ---------------------------------------------------------------------------

TEST(Incast, ThreeToOneCompletesWithPerHostCounters) {
  TestConfig cfg = incast_config(3, NicType::kCx6Dx, NicType::kCx6Dx);
  Orchestrator orch(cfg, ecn_marking_options());
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  ASSERT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  ASSERT_EQ(result.flows.size(), 3u);
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 2u);
  }

  // Counters are keyed by host index: one entry per host, senders transmit
  // the data, the sink receives the union.
  ASSERT_EQ(result.host_counters.size(), 4u);
  const std::uint64_t sink_rx = result.host_counters[3].rx_packets;
  for (int s = 0; s < 3; ++s) {
    EXPECT_GT(result.host_counters[static_cast<std::size_t>(s)].tx_packets,
              0u);
    EXPECT_LT(result.host_counters[static_cast<std::size_t>(s)].tx_packets,
              sink_rx);
  }
  // Hosts 0/1 stay reachable through the legacy aliases.
  EXPECT_EQ(result.requester_counters().tx_packets,
            result.host_counters[0].tx_packets);

  // Connection metadata carries the host endpoints.
  ASSERT_EQ(result.connections.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(result.connections[static_cast<std::size_t>(i)].src_host, i);
    EXPECT_EQ(result.connections[static_cast<std::size_t>(i)].dst_host, 3);
  }

  // The host-keyed counter analyzer agrees with the trace.
  std::vector<HostCountersView> hosts(4);
  std::vector<std::pair<int, int>> pairs;
  for (const auto& meta : result.connections) {
    pairs.emplace_back(meta.src_host, meta.dst_host);
    hosts[static_cast<std::size_t>(meta.src_host)].ips = {meta.requester.ip};
    hosts[static_cast<std::size_t>(meta.dst_host)].ips = {meta.responder.ip};
  }
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    hosts[h].counters = result.host_counters[h];
  }
  const CounterReport report =
      check_counters_hosts(result.trace, cfg.traffic.verb, hosts, pairs);
  EXPECT_TRUE(report.consistent());
}

TEST(Incast, CongestionMarksFlowBackAsCnps) {
  TestConfig cfg = incast_config(3, NicType::kCx6Dx, NicType::kCx6Dx);
  Orchestrator orch(cfg, ecn_marking_options());
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);

  // The 3:1 bottleneck builds the egress queue past the threshold: data
  // packets get CE, the sink's notification point answers with CNPs, and
  // every sender's reaction point handles some.
  EXPECT_GT(result.switch_counters.ecn_marked_by_queue, 0u);
  EXPECT_GT(result.host_counters[3].np_ecn_marked_roce_packets, 0u);
  EXPECT_GT(result.host_counters[3].np_cnp_sent, 0u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_GT(result.host_counters[static_cast<std::size_t>(s)].rp_cnp_handled,
              0u)
        << "sender " << s;
  }
}

// ---------------------------------------------------------------------------
// CNP coalescing per device profile (§6.3)
// ---------------------------------------------------------------------------

TEST(Incast, NvidiaSinkPacesCnpsAtDocumentedFourMicroseconds) {
  // CX6 Dx rate-limits CNP generation per PORT with the documented 4 us
  // default: across ALL reaction points the gap never drops below it.
  TestConfig cfg = incast_config(3, NicType::kCx6Dx, NicType::kCx6Dx);
  cfg.traffic.message_size = 512 * 1024;  // sustain the congestion episode
  Orchestrator orch(cfg, ecn_marking_options());
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);

  const DeviceProfile& profile = DeviceProfile::get(NicType::kCx6Dx);
  ASSERT_EQ(profile.cnp_mode, CnpRateLimitMode::kPerPort);
  const Ipv4Address sink_ip = result.connections[0].responder.ip;
  const CnpReport cnps = analyze_cnps(result.trace, {sink_ip});
  ASSERT_GE(cnps.cnps.size(), 2u) << "incast produced too few CNPs to "
                                     "measure coalescing";
  const auto gap = cnps.min_interval_global();
  ASSERT_TRUE(gap.has_value());
  EXPECT_GE(*gap, profile.default_min_time_between_cnps);
  // Marks outnumber CNPs — that is what coalescing means. Queue-driven CE
  // marks land after the mirror tap, so the ground truth is the sink's
  // notification-point counter, not the trace.
  EXPECT_GT(result.host_counters[3].np_ecn_marked_roce_packets,
            cnps.cnps.size());
}

TEST(Incast, E810SinkIgnoresConfiguredCnpIntervalAndUsesHiddenFiftyUs) {
  // E810's CNP pacing is hidden (~50 us, per QP) and NOT configurable:
  // asking for 4 us must change nothing (§6.3).
  TestConfig cfg = incast_config(3, NicType::kCx6Dx, NicType::kE810);
  cfg.traffic.message_size = 512 * 1024;  // long enough for repeat CNPs
  cfg.hosts[3].roce.min_time_between_cnps = 4 * kMicrosecond;
  Orchestrator orch(cfg, ecn_marking_options());
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);

  const DeviceProfile& profile = DeviceProfile::get(NicType::kE810);
  ASSERT_EQ(profile.cnp_mode, CnpRateLimitMode::kPerQp);
  ASSERT_FALSE(profile.cnp_interval_configurable);
  EXPECT_EQ(profile.default_min_time_between_cnps, 50 * kMicrosecond);

  const Ipv4Address sink_ip = result.connections[0].responder.ip;
  const CnpReport cnps = analyze_cnps(result.trace, {sink_ip});
  ASSERT_GE(cnps.cnps.size(), 2u);
  // Per-QP pacing: within each (reaction point, QP) stream the hidden
  // 50 us floor holds, even though the config asked for 4 us.
  const auto per_qp = cnps.min_interval_per_qp();
  ASSERT_TRUE(per_qp.has_value());
  EXPECT_GE(*per_qp, profile.default_min_time_between_cnps);

  // §6.2.4: the trace carries CNPs but E810's cnpSent counter is stuck.
  EXPECT_EQ(result.host_counters[3].np_cnp_sent, 0u);
  EXPECT_GT(cnps.cnps.size(), 0u);
}

}  // namespace
}  // namespace lumina
