// Determinism property test for the campaign runner: the same campaign run
// at --jobs 1, 4, and 8 must produce byte-identical aggregated artifacts
// (summary.csv plus every per-run results directory). This is the contract
// that makes parallel campaigns trustworthy — thread count is a pure
// throughput knob, never an output knob.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/campaign_config.h"
#include "telemetry/report.h"

namespace lumina {
namespace {

namespace fs = std::filesystem;

// A mixed campaign exercising every run kind: a swept+repeated Go-Back-N
// drop experiment (8 runs), three fuzz shards, and a two-issue suite probe.
constexpr const char* kCampaignYaml = R"(campaign:
  name: determinism
  seed: 2023
  runs:
    - kind: experiment
      name: gbn-drop
      repeat: 2
      sweep:
        message-size: [4096, 10240]
        num-connections: [1, 2]
      config:
        traffic:
          rdma-verb: write
          num-msgs-per-qp: 3
          mtu: 1024
          data-pkt-events:
          - {qpn: 1, psn: 3, type: drop, iter: 1}
    - kind: fuzz
      target: lossy-network
      nic: cx5
      shards: 3
      pool-size: 2
      max-iterations: 1
    - kind: suite
      nics: [e810]
      issues: [cnp-rate-limiting, counter-inconsistency]
)";

std::string scratch_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("lumina_campaign_det_" + tag + "_" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

std::map<std::string, std::string> snapshot_tree(const std::string& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    // report.json wall sections legitimately vary with wall clock and
    // --jobs; the determinism contract covers the deterministic section.
    if (entry.path().filename() == "report.json") {
      bytes = telemetry::extract_deterministic_section(bytes);
      EXPECT_FALSE(bytes.empty()) << entry.path();
    }
    files[fs::relative(entry.path(), root).string()] = std::move(bytes);
  }
  return files;
}

void expect_identical_trees(const std::map<std::string, std::string>& a,
                            const std::map<std::string, std::string>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [path, bytes] : a) {
    const auto it = b.find(path);
    ASSERT_NE(it, b.end()) << label << ": missing " << path;
    EXPECT_EQ(bytes, it->second) << label << ": differs at " << path;
  }
}

std::map<std::string, std::string> run_at_jobs(const Campaign& campaign,
                                               int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seed = campaign.seed;
  const CampaignReport report = run_campaign(campaign, options);
  EXPECT_EQ(report.runs.size(), campaign.runs.size());

  const std::string dir = scratch_dir("jobs" + std::to_string(jobs));
  std::string failed;
  EXPECT_TRUE(write_campaign_artifacts(report, dir, &failed)) << failed;
  auto tree = snapshot_tree(dir);
  fs::remove_all(dir);
  return tree;
}

TEST(CampaignDeterminism, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  ASSERT_EQ(campaign.runs.size(), 8u + 3u + 2u);

  const auto jobs1 = run_at_jobs(campaign, 1);
  const auto jobs4 = run_at_jobs(campaign, 4);
  const auto jobs8 = run_at_jobs(campaign, 8);

  // Sanity: the aggregate is non-trivial — a summary plus one results
  // directory (pcap, counters, flows...) per experiment run.
  ASSERT_TRUE(jobs1.count("summary.csv"));
  ASSERT_GT(jobs1.size(), 8u * 5u);

  expect_identical_trees(jobs1, jobs4, "jobs=1 vs jobs=4");
  expect_identical_trees(jobs1, jobs8, "jobs=1 vs jobs=8");
}

TEST(CampaignDeterminism, ReportFieldsMatchAcrossJobCounts) {
  const Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  const auto a = run_campaign(campaign, CampaignOptions{1, campaign.seed});
  const auto b = run_campaign(campaign, CampaignOptions{8, campaign.seed});
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].name, b.runs[i].name) << i;
    EXPECT_EQ(a.runs[i].seed, b.runs[i].seed) << i;
    EXPECT_EQ(a.runs[i].ok, b.runs[i].ok) << i;
    EXPECT_EQ(a.runs[i].summary, b.runs[i].summary) << i;
    EXPECT_EQ(a.runs[i].metrics.sim_duration, b.runs[i].metrics.sim_duration)
        << i;
    EXPECT_EQ(a.runs[i].metrics.sim_events, b.runs[i].metrics.sim_events)
        << i;
  }
  EXPECT_EQ(campaign_summary_csv(a), campaign_summary_csv(b));
}

TEST(CampaignDeterminism, CampaignSeedChangesFuzzOutcomes) {
  // The other side of the determinism coin: different campaign seeds must
  // actually reach the per-run RNGs (fuzz shards draw from them directly).
  Campaign campaign = load_campaign(parse_yaml(kCampaignYaml));
  const auto a = run_campaign(campaign, CampaignOptions{4, 1});
  const auto b = run_campaign(campaign, CampaignOptions{4, 2});
  ASSERT_EQ(a.runs.size(), b.runs.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_NE(a.runs[i].seed, b.runs[i].seed) << i;
    if (a.runs[i].summary != b.runs[i].summary) any_difference = true;
  }
  EXPECT_TRUE(any_difference)
      << "campaign seed had no observable effect on any run";
}

}  // namespace
}  // namespace lumina
