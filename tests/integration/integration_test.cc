// End-to-end tests: full testbed (hosts + injector switch + dumper pool)
// runs through the orchestrator, results validated through the analyzers.
#include <gtest/gtest.h>

#include "analyzers/cnp_analyzer.h"
#include "analyzers/counter_analyzer.h"
#include "analyzers/gbn_fsm.h"
#include "analyzers/retrans_perf.h"
#include "orchestrator/orchestrator.h"

namespace lumina {
namespace {

TestConfig basic_config(NicType nic, RdmaVerb verb) {
  TestConfig cfg;
  cfg.requester().nic_type = nic;
  cfg.responder().nic_type = nic;
  cfg.traffic.verb = verb;
  cfg.traffic.num_connections = 1;
  cfg.traffic.num_msgs_per_qp = 3;
  cfg.traffic.message_size = 10240;
  cfg.traffic.mtu = 1024;
  return cfg;
}

TEST(Integration, CleanWriteTransferCompletes) {
  Orchestrator orch(basic_config(NicType::kCx5, RdmaVerb::kWrite));
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished) << "traffic did not complete";
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].completed(), 3u);
  EXPECT_FALSE(result.flows[0].aborted);
  EXPECT_GT(result.flows[0].goodput_gbps(), 1.0);
  // 3 messages x 10 data packets + ACKs must be in the trace.
  EXPECT_GE(result.trace.size(), 33u);
}

TEST(Integration, CleanReadTransferCompletes) {
  Orchestrator orch(basic_config(NicType::kCx5, RdmaVerb::kRead));
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  EXPECT_EQ(result.flows[0].completed(), 3u);
}

TEST(Integration, CleanSendTransferCompletes) {
  Orchestrator orch(basic_config(NicType::kCx5, RdmaVerb::kSendRecv));
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  EXPECT_EQ(result.flows[0].completed(), 3u);
}

TEST(Integration, WriteDropRecoversViaNack) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  EXPECT_EQ(result.flows[0].completed(), 3u);

  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_FALSE(episodes[0].timeout_recovery);
  ASSERT_TRUE(episodes[0].nack_generation_latency().has_value());
  ASSERT_TRUE(episodes[0].nack_reaction_latency().has_value());
  EXPECT_GT(*episodes[0].nack_generation_latency(), 0);
  EXPECT_GT(*episodes[0].nack_reaction_latency(), 0);

  // Counters reflect the loss.
  EXPECT_GE(result.responder_counters().out_of_sequence, 1u);
  EXPECT_GE(result.requester_counters().packet_seq_err, 1u);
  EXPECT_GE(result.requester_counters().retransmitted_packets, 1u);

  const auto gbn = check_gbn_compliance(result.trace, RdmaVerb::kWrite);
  EXPECT_TRUE(gbn.compliant()) << gbn.violations.size() << " violations; first: "
                               << (gbn.violations.empty()
                                       ? ""
                                       : gbn.violations[0].description);
}

TEST(Integration, ReadDropRecoversViaReRequest) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kRead);
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 3u);
  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kRead);
  ASSERT_EQ(episodes.size(), 1u);
  ASSERT_TRUE(episodes[0].nack_time.has_value());
  ASSERT_TRUE(episodes[0].retransmit_time.has_value());
  EXPECT_GE(result.requester_counters().implied_nak_seq_err, 1u);

  const auto gbn = check_gbn_compliance(result.trace, RdmaVerb::kRead);
  EXPECT_TRUE(gbn.compliant());
}

TEST(Integration, TailDropRecoversViaTimeout) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.num_msgs_per_qp = 1;
  cfg.traffic.min_retransmit_timeout = 10;  // 4.2 ms RTO to keep tests fast
  // Message is 10 packets; drop the last one -> no OOO arrival, no NACK.
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 10, EventType::kDrop, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  EXPECT_GE(result.requester_counters().local_ack_timeout_err, 1u);

  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kWrite);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_TRUE(episodes[0].timeout_recovery);
  // MCT dominated by the 4.2 ms RTO.
  EXPECT_GT(result.flows[0].avg_mct_us(), 4000.0);
}

TEST(Integration, DoubleDropWithIterTargeting) {
  // Listing 2: drop a packet, then drop its retransmission via iter=2.
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.num_msgs_per_qp = 1;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kDrop, 2});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  const auto episodes = analyze_retransmissions(result.trace, RdmaVerb::kWrite);
  EXPECT_EQ(episodes.size(), 2u);  // both drops found with correct iters
  ASSERT_GE(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].iter, 1u);
  EXPECT_EQ(episodes[1].iter, 2u);
}

TEST(Integration, EcnMarkTriggersCnp) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.requester().roce.dcqcn_rp_enable = true;
  cfg.responder().roce.dcqcn_np_enable = true;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 4, EventType::kEcn, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  const auto cnps = analyze_cnps(result.trace);
  EXPECT_EQ(cnps.ecn_marked_data_packets, 1u);
  EXPECT_EQ(cnps.cnps.size(), 1u);
  EXPECT_GE(result.responder_counters().np_cnp_sent, 1u);
  EXPECT_GE(result.requester_counters().rp_cnp_handled, 1u);
}

TEST(Integration, CorruptionDetectedByIcrc) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.num_msgs_per_qp = 1;
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 5, EventType::kCorrupt, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.flows[0].completed(), 1u);
  EXPECT_GE(result.responder_counters().icrc_error_packets, 1u);
  // The corrupted packet is discarded like a loss; recovery must happen.
  EXPECT_GE(result.requester_counters().retransmitted_packets, 1u);
}

TEST(Integration, MultiQpTransfer) {
  TestConfig cfg = basic_config(NicType::kCx6Dx, RdmaVerb::kWrite);
  cfg.traffic.num_connections = 4;
  cfg.traffic.num_msgs_per_qp = 2;
  cfg.traffic.barrier_sync = true;
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();

  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.integrity.ok()) << result.integrity.to_string();
  for (const auto& flow : result.flows) {
    EXPECT_EQ(flow.completed(), 2u);
  }
}

TEST(Integration, CountersConsistentOnHealthyNics) {
  TestConfig cfg = basic_config(NicType::kCx5, RdmaVerb::kWrite);
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 3, EventType::kDrop, 1});
  cfg.traffic.data_pkt_events.push_back(
      DataPacketEvent{1, 7, EventType::kEcn, 1});
  Orchestrator orch(cfg);
  const TestResult& result = orch.run();
  ASSERT_TRUE(result.finished);

  const auto report = check_counters(
      result.trace, RdmaVerb::kWrite, result.requester_counters(),
      result.responder_counters(), {result.connections[0].requester.ip},
      {result.connections[0].responder.ip});
  EXPECT_TRUE(report.consistent())
      << (report.inconsistencies.empty()
              ? ""
              : report.inconsistencies[0].counter + ": " +
                    report.inconsistencies[0].note);
}

}  // namespace
}  // namespace lumina
